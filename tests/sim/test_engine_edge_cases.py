"""Edge-case tests for the event engine left uncovered elsewhere."""

import pytest

from repro.sim import AllOf, AnyOf, Event, SimulationError, Simulator


class TestEventEdgeCases:
    def test_synchronous_wait_after_fail_defuses(self):
        """Subscribing (synchronously) to an already-failed event observes
        the failure and stops it escalating at the next timestep."""
        sim = Simulator()
        event = sim.event()
        event.fail(ValueError("early"))
        seen = []
        event.wait(lambda e: seen.append(type(e._exc).__name__))
        sim.run()  # must not raise: the failure was observed
        assert seen == ["ValueError"]

    def test_unobserved_failure_escalates_at_its_timestep(self):
        """Nobody can 'wait later': an unobserved failure raises when its
        timestep drains, so bugs never pass silently."""
        sim = Simulator()
        event = sim.event()
        event.fail(ValueError("lost"))
        with pytest.raises(SimulationError):
            sim.run()

    def test_fail_then_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.fail(ValueError("x"))
        with pytest.raises(SimulationError):
            event.trigger()
        # Consume the failure so run() does not escalate it.
        event._defused = True
        sim.run()

    def test_ok_property(self):
        sim = Simulator()
        event = sim.event()
        assert not event.ok
        event.trigger(1)
        assert event.ok

    def test_multiple_waiters_all_resumed(self):
        sim = Simulator()
        event = sim.event()
        results = []

        def waiter(sim, tag):
            value = yield event
            results.append((tag, value))

        for tag in range(5):
            sim.process(waiter(sim, tag))
        sim.schedule(2.0, event.trigger, "go")
        sim.run()
        assert results == [(tag, "go") for tag in range(5)]

    def test_timeout_with_payload(self):
        sim = Simulator()

        def body(sim):
            return (yield sim.timeout(1.0, value={"k": 1}))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == {"k": 1}


class TestProcessEdgeCases:
    def test_process_name_defaults_to_generator_name(self):
        sim = Simulator()

        def my_worker(sim):
            yield sim.timeout(1.0)

        proc = sim.process(my_worker(sim))
        assert proc.name == "my_worker"
        sim.run()

    def test_explicit_name_wins(self):
        sim = Simulator()

        def body(sim):
            yield sim.timeout(1.0)

        proc = sim.process(body(sim), name="custom")
        assert proc.name == "custom"
        sim.run()

    def test_finished_flag(self):
        sim = Simulator()

        def body(sim):
            yield sim.timeout(1.0)

        proc = sim.process(body(sim))
        assert not proc.finished
        sim.run()
        assert proc.finished

    def test_immediate_return_process(self):
        sim = Simulator()

        def body(sim):
            return 42
            yield  # pragma: no cover - makes this a generator

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == 42

    def test_exception_before_first_yield(self):
        sim = Simulator()

        def body(sim):
            raise RuntimeError("instant")
            yield  # pragma: no cover

        def parent(sim):
            try:
                yield sim.process(body(sim))
            except RuntimeError as error:
                return str(error)

        proc = sim.process(parent(sim))
        sim.run()
        assert proc.value == "instant"


class TestCompositeEdgeCases:
    def test_anyof_with_processes(self):
        sim = Simulator()

        def slow(sim):
            yield sim.timeout(10.0)
            return "slow"

        def fast(sim):
            yield sim.timeout(1.0)
            return "fast"

        def body(sim):
            index, value = yield AnyOf(sim, [sim.process(slow(sim)), sim.process(fast(sim))])
            return index, value

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == (1, "fast")

    def test_allof_failure_propagates(self):
        sim = Simulator()
        good = sim.timeout(1.0, "ok")
        bad = sim.event()
        sim.schedule(2.0, bad.fail, ValueError("boom"))

        def body(sim):
            try:
                yield AllOf(sim, [good, bad])
            except ValueError as error:
                return str(error)

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == "boom"

    def test_anyof_ties_resolve_to_first_listed(self):
        sim = Simulator()
        first = sim.timeout(3.0, "a")
        second = sim.timeout(3.0, "b")

        def body(sim):
            return (yield AnyOf(sim, [first, second]))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == (0, "a")

    def test_peek_after_drain_is_none(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.peek() is None
