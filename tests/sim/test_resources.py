"""Unit tests for resources, stores, and service stations."""

import pytest

from repro.sim import Resource, ServiceStation, SimulationError, Simulator, Store


class TestResource:
    def test_grants_up_to_capacity_immediately(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        assert resource.request().triggered
        assert resource.request().triggered
        assert not resource.request().triggered
        assert resource.queue_length == 1

    def test_fifo_granting_order(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def worker(sim, tag, hold):
            grant = resource.request()
            yield grant
            order.append(("start", tag, sim.now))
            yield sim.timeout(hold)
            resource.release()

        sim.process(worker(sim, "a", 5.0))
        sim.process(worker(sim, "b", 3.0))
        sim.process(worker(sim, "c", 1.0))
        sim.run()
        assert order == [("start", "a", 0.0), ("start", "b", 5.0), ("start", "c", 8.0)]

    def test_release_without_request_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim).release()

    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_locked_reflects_state(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        assert not resource.locked()
        resource.request()
        assert resource.locked()
        resource.release()
        assert not resource.locked()


class TestStore:
    def test_put_then_get_immediate(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        event = store.get()
        assert event.triggered
        assert event.value == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)

        def consumer(sim):
            item = yield store.get()
            return (item, sim.now)

        proc = sim.process(consumer(sim))
        sim.schedule(7.0, store.put, "late")
        sim.run()
        assert proc.value == ("late", 7.0)

    def test_items_delivered_once_in_order(self):
        sim = Simulator()
        store = Store(sim)
        received = []

        def consumer(sim):
            while True:
                item = yield store.get()
                received.append(item)
                if item == "stop":
                    return

        sim.process(consumer(sim))
        for item in ["a", "b", "c", "stop"]:
            store.put(item)
        sim.run()
        assert received == ["a", "b", "c", "stop"]

    def test_multiple_getters_fifo(self):
        sim = Simulator()
        store = Store(sim)
        results = []

        def consumer(sim, tag):
            item = yield store.get()
            results.append((tag, item))

        sim.process(consumer(sim, 0))
        sim.process(consumer(sim, 1))
        sim.schedule(1.0, store.put, "first")
        sim.schedule(2.0, store.put, "second")
        sim.run()
        assert results == [(0, "first"), (1, "second")]

    def test_len_counts_buffered_items(self):
        sim = Simulator()
        store = Store(sim)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestServiceStation:
    def test_single_server_serializes(self):
        sim = Simulator()
        station = ServiceStation(sim, servers=1)
        done = []
        for _ in range(3):
            station.submit(2.0).wait(lambda e: done.append(sim.now))
        sim.run()
        assert done == [2.0, 4.0, 6.0]

    def test_multi_server_parallelism(self):
        sim = Simulator()
        station = ServiceStation(sim, servers=2)
        done = []
        for _ in range(4):
            station.submit(3.0).wait(lambda e: done.append(sim.now))
        sim.run()
        assert done == [3.0, 3.0, 6.0, 6.0]

    def test_idle_station_starts_service_at_now(self):
        sim = Simulator()
        station = ServiceStation(sim)
        done = []

        def body(sim):
            yield sim.timeout(10.0)
            completion = station.submit(1.5)
            yield completion
            done.append(sim.now)

        sim.process(body(sim))
        sim.run()
        assert done == [11.5]

    def test_throughput_matches_service_rate(self):
        sim = Simulator()
        rate_mops = 2.0  # one op per 0.5 us
        station = ServiceStation(sim, servers=1)
        completions = []
        for _ in range(1000):
            station.submit(1.0 / rate_mops).wait(lambda e: completions.append(sim.now))
        sim.run()
        measured = len(completions) / sim.now
        assert measured == pytest.approx(rate_mops, rel=1e-6)

    def test_utilization_accounting(self):
        sim = Simulator()
        station = ServiceStation(sim, servers=1)
        station.submit(4.0)
        sim.run()
        assert sim.now == 4.0
        assert station.utilization() == pytest.approx(1.0)
        assert station.operations == 1

    def test_negative_service_time_rejected(self):
        sim = Simulator()
        station = ServiceStation(sim)
        with pytest.raises(SimulationError):
            station.submit(-1.0)

    def test_backlog_reports_wait(self):
        sim = Simulator()
        station = ServiceStation(sim, servers=1)
        station.submit(5.0)
        assert station.backlog() == 5.0

    def test_submission_value_carried(self):
        sim = Simulator()
        station = ServiceStation(sim)
        event = station.submit(1.0, value="tag")
        sim.run()
        assert event.value == "tag"
