"""Tests for the RDMA atomic verbs (CAS / fetch-and-add)."""

import pytest

from repro.errors import TransportError
from repro.hw import CLUSTER_EUROSYS17, QPType, build_cluster
from repro.sim import Simulator


def make_rig(qp_type=QPType.RC):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    endpoint, _ = cluster.connect(cluster.machines[1], cluster.server, qp_type)
    region = cluster.server.register_memory(64)
    return sim, cluster, endpoint, region


class TestCompareAndSwap:
    def test_successful_swap(self):
        sim, _, endpoint, region = make_rig()
        region.write_local(0, (7).to_bytes(8, "little"))

        def body(sim):
            original = yield endpoint.post_atomic_cas(region, 0, expected=7, swap=99)
            return original

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == 7
        assert int.from_bytes(region.read_local(0, 8), "little") == 99

    def test_failed_swap_leaves_memory_untouched(self):
        sim, _, endpoint, region = make_rig()
        region.write_local(0, (5).to_bytes(8, "little"))

        def body(sim):
            return (yield endpoint.post_atomic_cas(region, 0, expected=7, swap=99))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == 5  # the original reveals the mismatch
        assert int.from_bytes(region.read_local(0, 8), "little") == 5

    def test_concurrent_cas_serialized_one_winner(self):
        """Two racing CAS ops on the same word: exactly one wins."""
        sim, cluster, _, region = make_rig()
        endpoints = [
            cluster.connect(cluster.machines[m], cluster.server)[0] for m in (2, 3)
        ]
        winners = []

        def contender(sim, endpoint, tag):
            original = yield endpoint.post_atomic_cas(region, 0, expected=0, swap=tag)
            if original == 0:
                winners.append(tag)

        sim.process(contender(sim, endpoints[0], 11))
        sim.process(contender(sim, endpoints[1], 22))
        sim.run()
        assert len(winners) == 1
        assert int.from_bytes(region.read_local(0, 8), "little") == winners[0]

    def test_alignment_enforced(self):
        sim, _, endpoint, region = make_rig()
        with pytest.raises(TransportError):
            endpoint.post_atomic_cas(region, 4, expected=0, swap=1)

    def test_rc_required(self):
        sim, _, endpoint, region = make_rig(QPType.UC)
        with pytest.raises(TransportError):
            endpoint.post_atomic_cas(region, 0, expected=0, swap=1)

    def test_atomic_costs_a_round_trip(self):
        sim, _, endpoint, region = make_rig()

        def body(sim):
            yield endpoint.post_atomic_cas(region, 0, expected=0, swap=1)
            return sim.now

        proc = sim.process(body(sim))
        sim.run()
        assert 1.0 < proc.value < 2.5  # read-like latency


class TestFetchAndAdd:
    def test_adds_and_returns_original(self):
        sim, _, endpoint, region = make_rig()
        region.write_local(8, (100).to_bytes(8, "little"))

        def body(sim):
            return (yield endpoint.post_atomic_faa(region, 8, delta=5))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == 100
        assert int.from_bytes(region.read_local(8, 8), "little") == 105

    def test_concurrent_faa_all_counted(self):
        sim, cluster, _, region = make_rig()
        endpoints = [
            cluster.connect(cluster.machines[m % 7 + 1], cluster.server)[0]
            for m in range(5)
        ]

        def incrementer(sim, endpoint):
            for _ in range(10):
                yield endpoint.post_atomic_faa(region, 0, delta=1)

        for endpoint in endpoints:
            sim.process(incrementer(sim, endpoint))
        sim.run()
        assert int.from_bytes(region.read_local(0, 8), "little") == 50

    def test_wraps_at_64_bits(self):
        sim, _, endpoint, region = make_rig()
        region.write_local(0, (2**64 - 1).to_bytes(8, "little"))

        def body(sim):
            return (yield endpoint.post_atomic_faa(region, 0, delta=2))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == 2**64 - 1
        assert int.from_bytes(region.read_local(0, 8), "little") == 1
