"""Unit and integration tests for queue pairs and verbs."""

import pytest

from repro.errors import TransportError
from repro.hw import CLUSTER_EUROSYS17, CONNECTX3, QPType, build_cluster
from repro.hw.verbs import READ_REQUEST_WIRE_BYTES
from repro.sim import Simulator


@pytest.fixture()
def rig():
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    client_ep, server_ep = cluster.connect(cluster.machines[1], cluster.server)
    return sim, cluster, client_ep, server_ep


def prop_us(cluster):
    return cluster.network.propagation_us("m0", "m1")


class TestRead:
    def test_read_copies_remote_bytes(self, rig):
        sim, cluster, client_ep, _ = rig
        local = client_ep.machine.register_memory(64)
        remote = cluster.server.register_memory(64)
        remote.write_local(4, b"payload!")

        def body(sim):
            yield client_ep.post_read(local, 0, remote, 4, 8)
            return local.read_local(0, 8)

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == b"payload!"

    def test_unloaded_read_latency_anatomy(self, rig):
        sim, cluster, client_ep, _ = rig
        local = client_ep.machine.register_memory(64)
        remote = cluster.server.register_memory(64)

        def body(sim):
            yield client_ep.post_read(local, 0, remote, 0, 32)
            return sim.now

        proc = sim.process(body(sim))
        sim.run()
        spec = CONNECTX3
        expected = (
            client_ep.machine.rnic.outbound_service_us(READ_REQUEST_WIRE_BYTES)
            + prop_us(cluster)
            + cluster.server.rnic.inbound_service_us(32)
            + prop_us(cluster)
            + spec.read_extra_us
        )
        assert proc.value == pytest.approx(expected)
        # The paper's ballpark: a small read completes in ~1.4-2.0 us.
        assert 1.0 < proc.value < 2.0

    def test_read_requires_rc(self, rig):
        sim, cluster, *_ = rig
        client_ep, _ = cluster.connect(
            cluster.machines[2], cluster.server, qp_type=QPType.UC
        )
        local = client_ep.machine.register_memory(8)
        remote = cluster.server.register_memory(8)
        with pytest.raises(TransportError):
            client_ep.post_read(local, 0, remote, 0, 8)

    def test_read_validates_region_ownership(self, rig):
        sim, cluster, client_ep, _ = rig
        wrong_machine_mr = cluster.machines[2].register_memory(8)
        remote = cluster.server.register_memory(8)
        with pytest.raises(TransportError):
            client_ep.post_read(wrong_machine_mr, 0, remote, 0, 8)
        local = client_ep.machine.register_memory(8)
        with pytest.raises(TransportError):
            client_ep.post_read(local, 0, wrong_machine_mr, 0, 8)

    def test_read_faster_than_write_is_false(self, rig):
        """Writes complete faster than reads (paper §4.4.2, HERD)."""
        sim, cluster, client_ep, _ = rig
        local = client_ep.machine.register_memory(64)
        remote = cluster.server.register_memory(64)
        times = {}

        def reader(sim):
            yield client_ep.post_read(local, 0, remote, 0, 32)
            times["read"] = sim.now

        proc = sim.process(reader(sim))
        sim.run()

        sim2 = Simulator()
        cluster2 = build_cluster(sim2, CLUSTER_EUROSYS17)
        ep2, _ = cluster2.connect(cluster2.machines[1], cluster2.server)
        local2 = ep2.machine.register_memory(64)
        remote2 = cluster2.server.register_memory(64)

        def writer(sim):
            yield ep2.post_write(local2, 0, remote2, 0, 32)
            times["write"] = sim2.now

        sim2.process(writer(sim2))
        sim2.run()
        assert times["write"] < times["read"]


class TestWrite:
    def test_write_places_bytes_remotely(self, rig):
        sim, cluster, client_ep, _ = rig
        local = client_ep.machine.register_memory(64)
        remote = cluster.server.register_memory(64)
        local.write_local(0, b"request-bytes")

        def body(sim):
            yield client_ep.post_write(local, 0, remote, 16, 13)

        sim.process(body(sim))
        sim.run()
        assert remote.read_local(16, 13) == b"request-bytes"

    def test_delivery_happens_before_completion(self, rig):
        """RFP relies on the server seeing a request before the client's
        write completion fires (ACK still in flight)."""
        sim, cluster, client_ep, _ = rig
        local = client_ep.machine.register_memory(8)
        remote = cluster.server.register_memory(8)
        timeline = {}

        def on_delivery():
            timeline["delivered"] = sim.now

        def body(sim):
            yield client_ep.post_write(local, 0, remote, 0, 8, on_delivery=on_delivery)
            timeline["completed"] = sim.now

        sim.process(body(sim))
        sim.run()
        assert timeline["delivered"] < timeline["completed"]

    def test_write_payload_sampled_at_post_time(self, rig):
        """The NIC DMAs the local buffer at issue; later local writes must
        not alter the in-flight payload."""
        sim, cluster, client_ep, _ = rig
        local = client_ep.machine.register_memory(8)
        remote = cluster.server.register_memory(8)
        local.write_local(0, b"original")

        def body(sim):
            completion = client_ep.post_write(local, 0, remote, 0, 8)
            local.write_local(0, b"clobber!")
            yield completion

        sim.process(body(sim))
        sim.run()
        assert remote.read_local(0, 8) == b"original"

    def test_write_on_ud_rejected(self, rig):
        sim, cluster, *_ = rig
        ep, _ = cluster.connect(cluster.machines[2], cluster.server, qp_type=QPType.UD)
        local = ep.machine.register_memory(8)
        remote = cluster.server.register_memory(8)
        with pytest.raises(TransportError):
            ep.post_write(local, 0, remote, 0, 8)

    def test_uc_write_completes_without_ack(self, rig):
        sim, cluster, *_ = rig
        ep, _ = cluster.connect(cluster.machines[2], cluster.server, qp_type=QPType.UC)
        local = ep.machine.register_memory(8)
        remote = cluster.server.register_memory(8)
        times = {}

        def body(sim):
            yield ep.post_write(local, 0, remote, 0, 8)
            times["uc"] = sim.now

        sim.process(body(sim))
        sim.run()
        # UC completion omits remote serve + ACK propagation.
        assert times["uc"] == pytest.approx(ep.machine.rnic.outbound_service_us(8))
        assert remote.read_local(0, 8) == bytes(8)  # local buffer was zeroed


class TestSendRecv:
    @pytest.mark.parametrize("qp_type", [QPType.RC, QPType.UC, QPType.UD])
    def test_send_recv_roundtrip(self, qp_type):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        client_ep, server_ep = cluster.connect(
            cluster.machines[1], cluster.server, qp_type=qp_type
        )

        def client(sim):
            yield client_ep.post_send(b"ping")
            reply = yield client_ep.recv()
            return reply

        def server(sim):
            message = yield server_ep.recv()
            # Receiver software cost (why two-sided shows no asymmetry).
            yield sim.timeout(CONNECTX3.recv_cpu_us)
            yield server_ep.post_send(b"pong:" + message)

        proc = sim.process(client(sim))
        sim.process(server(sim))
        sim.run()
        assert proc.value == b"pong:ping"

    def test_messages_delivered_in_order(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        client_ep, server_ep = cluster.connect(cluster.machines[1], cluster.server)

        def client(sim):
            for i in range(5):
                yield client_ep.post_send(bytes([i]))

        def server(sim):
            received = []
            for _ in range(5):
                message = yield server_ep.recv()
                received.append(message[0])
            return received

        sim.process(client(sim))
        proc = sim.process(server(sim))
        sim.run()
        assert proc.value == [0, 1, 2, 3, 4]


class TestQueuePairLifecycle:
    def test_close_releases_qp_counts(self, rig):
        sim, cluster, client_ep, server_ep = rig
        before = cluster.server.rnic.active_qps
        client_ep.qp.close()
        assert cluster.server.rnic.active_qps == before - 1
        with pytest.raises(TransportError):
            client_ep.post_send(b"x")

    def test_connect_self_rejected(self, rig):
        from repro.errors import HardwareModelError

        _, cluster, *_ = rig
        with pytest.raises(HardwareModelError):
            cluster.connect(cluster.server, cluster.server)

    def test_connect_registers_qps_on_both_nics(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        assert cluster.server.rnic.active_qps == 0
        cluster.connect(cluster.machines[1], cluster.server)
        cluster.connect(cluster.machines[2], cluster.server)
        assert cluster.server.rnic.active_qps == 2
        assert cluster.machines[1].rnic.active_qps == 1
        cluster.close_all()
        assert cluster.server.rnic.active_qps == 0
