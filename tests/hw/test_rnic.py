"""Unit tests for the RNIC pipeline model (paper Figs. 3 and 5 shapes)."""

import pytest

from repro.errors import HardwareModelError
from repro.hw import CONNECTX3, pipeline_service_time
from repro.hw.rnic import RNIC
from repro.sim import Simulator


BW = CONNECTX3.effective_bandwidth_bytes_per_us


class TestPipelineServiceTime:
    def test_zero_size_equals_base(self):
        assert pipeline_service_time(0.5, 0, BW) == 0.5

    def test_small_payload_dominated_by_base(self):
        base = CONNECTX3.inbound_base_us
        service = pipeline_service_time(base, 32, BW)
        assert service == pytest.approx(base, rel=0.01)

    def test_large_payload_dominated_by_bandwidth(self):
        base = CONNECTX3.inbound_base_us
        service = pipeline_service_time(base, 8192, BW)
        assert service == pytest.approx(8192 / BW, rel=0.01)

    def test_monotone_in_size(self):
        base = CONNECTX3.inbound_base_us
        sizes = [32, 64, 128, 256, 512, 1024, 2048, 4096]
        services = [pipeline_service_time(base, s, BW) for s in sizes]
        assert services == sorted(services)

    def test_negative_size_rejected(self):
        with pytest.raises(HardwareModelError):
            pipeline_service_time(0.5, -1, BW)

    def test_inbound_flat_until_256_bytes(self):
        """Paper: sizes below L=256 B do not change IOPS (Fig. 5)."""
        base = CONNECTX3.inbound_base_us
        iops_32 = 1 / pipeline_service_time(base, 32, BW)
        iops_256 = 1 / pipeline_service_time(base, 256, BW)
        assert iops_256 >= 0.95 * iops_32

    def test_directions_converge_above_2kb(self):
        """Paper: in/out-bound IOPS equal once bandwidth dominates (Fig. 5)."""
        for size in (2048, 4096, 8192):
            inbound = 1 / pipeline_service_time(CONNECTX3.inbound_base_us, size, BW)
            outbound = 1 / pipeline_service_time(CONNECTX3.outbound_base_us, size, BW)
            assert outbound == pytest.approx(inbound, rel=0.25)
        # ... but differ by ~5x at 32 bytes.
        inbound = 1 / pipeline_service_time(CONNECTX3.inbound_base_us, 32, BW)
        outbound = 1 / pipeline_service_time(CONNECTX3.outbound_base_us, 32, BW)
        assert inbound / outbound > 4.5


class TestRnicContention:
    def make_rnic(self):
        return RNIC(Simulator(), CONNECTX3, owner_name="m0")

    def test_no_penalty_below_knees(self):
        rnic = self.make_rnic()
        for _ in range(CONNECTX3.read_issue_knee):
            rnic.register_issuer()
        assert rnic.issue_penalty("read") == 1.0
        assert rnic.issue_penalty("write") == 1.0

    def test_read_penalty_grows_past_knee(self):
        rnic = self.make_rnic()
        for _ in range(CONNECTX3.read_issue_knee + 10):
            rnic.register_issuer()
        expected = 1.0 + 10 * CONNECTX3.read_issue_coeff
        assert rnic.issue_penalty("read") == pytest.approx(expected)

    def test_write_penalty_grows_past_knee(self):
        rnic = self.make_rnic()
        for _ in range(CONNECTX3.write_issue_knee + 10):
            rnic.register_issuer()
        expected = 1.0 + 10 * CONNECTX3.write_issue_coeff
        assert rnic.issue_penalty("write") == pytest.approx(expected)

    def test_read_penalty_steeper_than_write(self):
        """Reads hold more NIC state, so their issuing congests earlier."""
        rnic = self.make_rnic()
        for _ in range(20):
            rnic.register_issuer()
        assert rnic.issue_penalty("read") > rnic.issue_penalty("write")

    def test_unknown_kind_rejected(self):
        with pytest.raises(HardwareModelError):
            self.make_rnic().issue_penalty("atomic")

    def test_unregister_restores_penalty(self):
        rnic = self.make_rnic()
        for _ in range(20):
            rnic.register_issuer()
        loaded = rnic.issue_penalty("read")
        for _ in range(20):
            rnic.unregister_issuer()
        assert loaded > 1.0
        assert rnic.issue_penalty("read") == 1.0

    def test_qp_registration_tracked(self):
        rnic = self.make_rnic()
        rnic.register_qp()
        rnic.register_qp()
        assert rnic.active_qps == 2
        rnic.unregister_qp()
        assert rnic.active_qps == 1

    def test_underflow_rejected(self):
        rnic = self.make_rnic()
        with pytest.raises(HardwareModelError):
            rnic.unregister_issuer()
        with pytest.raises(HardwareModelError):
            rnic.unregister_qp()

    def test_service_times_reflect_peaks(self):
        rnic = self.make_rnic()
        assert rnic.inbound_service_us(32) == pytest.approx(1 / 11.26, rel=0.01)
        assert rnic.outbound_service_us(32) == pytest.approx(1 / 2.11, rel=0.01)


class TestRnicPipelines:
    def test_inbound_peak_rate_32b(self):
        """Back-to-back 32 B in-bound ops complete at ~11.26 MOPS."""
        sim = Simulator()
        rnic = RNIC(sim, CONNECTX3, "m0")
        operations = 2000
        for _ in range(operations):
            rnic.submit_inbound(32)
        sim.run()
        assert operations / sim.now == pytest.approx(11.26, rel=0.02)

    def test_outbound_peak_rate_32b(self):
        sim = Simulator()
        rnic = RNIC(sim, CONNECTX3, "m0")
        operations = 2000
        for _ in range(operations):
            rnic.submit_outbound(32)
        sim.run()
        assert operations / sim.now == pytest.approx(2.11, rel=0.02)

    def test_pipelines_are_independent(self):
        """In-bound and out-bound ops do not queue behind each other."""
        sim = Simulator()
        rnic = RNIC(sim, CONNECTX3, "m0")
        inbound = rnic.submit_inbound(32)
        rnic.submit_outbound(32)
        sim.run()
        assert inbound.triggered
        # In-bound completed at its own service time, unaffected by the
        # slower out-bound pipeline.
        assert rnic.in_pipeline.busy_time == pytest.approx(1 / 11.26, rel=0.01)
