"""Unit tests for registered memory regions and staged (torn) writes."""

import pytest

from repro.errors import RegistrationError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.hw.memory import staged_write
from repro.sim import Simulator


@pytest.fixture()
def machine():
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    return sim, cluster.server


class TestMemoryRegion:
    def test_round_trip(self, machine):
        _, m = machine
        region = m.register_memory(64)
        region.write_local(8, b"hello")
        assert region.read_local(8, 5) == b"hello"

    def test_starts_zeroed(self, machine):
        _, m = machine
        region = m.register_memory(16)
        assert region.read_local(0, 16) == bytes(16)

    def test_bounds_checked(self, machine):
        _, m = machine
        region = m.register_memory(16)
        with pytest.raises(RegistrationError):
            region.read_local(10, 7)
        with pytest.raises(RegistrationError):
            region.write_local(15, b"ab")
        with pytest.raises(RegistrationError):
            region.read_local(-1, 4)

    def test_zero_size_rejected(self, machine):
        _, m = machine
        with pytest.raises(RegistrationError):
            m.register_memory(0)

    def test_deregistered_region_rejects_access(self, machine):
        _, m = machine
        region = m.register_memory(16)
        m.release_memory(region)
        assert not region.registered
        with pytest.raises(RegistrationError):
            region.read_local(0, 1)

    def test_release_foreign_region_rejected(self, machine):
        sim, m = machine
        other_sim = Simulator()
        other = build_cluster(other_sim, CLUSTER_EUROSYS17).server
        region = other.register_memory(16)
        with pytest.raises(RegistrationError):
            m.release_memory(region)

    def test_fill(self, machine):
        _, m = machine
        region = m.register_memory(8)
        region.fill(2, 4, 0xFF)
        assert region.read_local(0, 8) == b"\x00\x00\xff\xff\xff\xff\x00\x00"

    def test_registered_bytes_accounting(self, machine):
        _, m = machine
        a = m.register_memory(100)
        m.register_memory(50)
        assert m.registered_bytes() == 150
        m.release_memory(a)
        assert m.registered_bytes() == 50

    def test_memory_budget_enforced(self, machine):
        _, m = machine
        with pytest.raises(RegistrationError):
            m.register_memory(m.spec.memory_gb * (1 << 30) + 1)


class TestStagedWrite:
    def test_final_state_is_full_payload(self, machine):
        sim, m = machine
        region = m.register_memory(32)
        sim.process(staged_write(sim, region, 0, b"ABCDEFGH", duration=1.0))
        sim.run()
        assert region.read_local(0, 8) == b"ABCDEFGH"

    def test_mid_write_state_is_torn(self, machine):
        sim, m = machine
        region = m.register_memory(32)
        region.write_local(0, b"oldoldol")
        sim.process(staged_write(sim, region, 0, b"NEWNEWNE", duration=2.0))
        observed = {}

        def peek():
            observed["mid"] = region.read_local(0, 8)

        sim.schedule(1.0, peek)
        sim.run()
        # First half new, second half still old: a torn read.
        assert observed["mid"] == b"NEWNldol"
        assert region.read_local(0, 8) == b"NEWNEWNE"
