"""Tests for unreliable-transport loss injection and the UD send model."""

import pytest

from repro.errors import TransportError
from repro.hw import CLUSTER_EUROSYS17, CONNECTX3, QPType, build_cluster
from repro.sim import Simulator


def make_cluster():
    sim = Simulator()
    return sim, build_cluster(sim, CLUSTER_EUROSYS17)


class TestLossInjection:
    def test_rc_never_drops(self):
        sim, cluster = make_cluster()
        a, b = cluster.connect(
            cluster.machines[1], cluster.server, QPType.RC, loss_probability=0.9
        )
        received = []

        def server(sim):
            for _ in range(50):
                received.append((yield b.recv()))

        def client(sim):
            for i in range(50):
                yield a.post_send(bytes([i]))

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run()
        assert len(received) == 50
        assert a.qp.messages_lost == 0

    @pytest.mark.parametrize("qp_type", [QPType.UC, QPType.UD])
    def test_unreliable_messages_vanish_silently(self, qp_type):
        sim, cluster = make_cluster()
        a, b = cluster.connect(
            cluster.machines[1],
            cluster.server,
            qp_type,
            loss_probability=0.5,
            loss_seed=3,
        )
        sent = 200
        completions = []

        def client(sim):
            for i in range(sent):
                done = yield a.post_send(bytes([i % 256]))
                completions.append(done)

        sim.process(client(sim))
        sim.run()
        # Every send completed from the sender's perspective...
        assert len(completions) == sent
        # ...but roughly half never arrived.
        lost = a.qp.messages_lost
        assert 60 <= lost <= 140
        assert b.pending_messages == sent - lost

    def test_uc_write_loss_leaves_remote_memory_unchanged(self):
        sim, cluster = make_cluster()
        a, _ = cluster.connect(
            cluster.machines[1],
            cluster.server,
            QPType.UC,
            loss_probability=0.999999,  # effectively always dropped
            loss_seed=1,
        )
        local = cluster.machines[1].register_memory(16)
        remote = cluster.server.register_memory(16)
        local.write_local(0, b"payload-16-bytes")
        fired = {"delivered": False}

        def body(sim):
            yield a.post_write(
                local, 0, remote, 0, 16,
                on_delivery=lambda: fired.__setitem__("delivered", True),
            )

        sim.process(body(sim))
        sim.run()
        assert remote.read_local(0, 16) == bytes(16)
        assert not fired["delivered"]
        assert a.qp.messages_lost == 1

    def test_loss_probability_validated(self):
        sim, cluster = make_cluster()
        with pytest.raises(TransportError):
            cluster.connect(
                cluster.machines[1], cluster.server, QPType.UD, loss_probability=1.0
            )

    def test_loss_is_deterministic_per_seed(self):
        def run(seed):
            sim, cluster = make_cluster()
            a, _ = cluster.connect(
                cluster.machines[1],
                cluster.server,
                QPType.UD,
                loss_probability=0.3,
                loss_seed=seed,
            )

            def client(sim):
                for i in range(100):
                    yield a.post_send(b"x")

            sim.process(client(sim))
            sim.run()
            return a.qp.messages_lost

        assert run(7) == run(7)


class TestUdSendModel:
    def test_ud_sends_issue_cheaper_than_rc_writes(self):
        sim, cluster = make_cluster()
        rnic = cluster.server.rnic
        assert rnic.outbound_service_us(32, kind="ud_send") < rnic.outbound_service_us(
            32, kind="write"
        )
        expected = CONNECTX3.ud_send_scale
        ratio = rnic.outbound_service_us(1, "ud_send") / rnic.outbound_service_us(
            1, "write"
        )
        assert ratio == pytest.approx(expected, rel=0.01)

    def test_ud_send_rate_beats_rc_write_rate(self):
        """A UD-send loop out-issues an RC-write loop (HERD's edge)."""

        def sends_per_window(qp_type):
            sim, cluster = make_cluster()
            a, _ = cluster.connect(cluster.machines[1], cluster.server, qp_type)
            count = [0]

            def client(sim):
                while True:
                    yield sim.timeout(CONNECTX3.post_cpu_us)
                    yield a.post_send(bytes(32))
                    count[0] += 1

            sim.process(client(sim))
            sim.run(until=500.0)
            return count[0]

        assert sends_per_window(QPType.UD) > 1.5 * sends_per_window(QPType.RC)

    def test_large_ud_sends_still_bandwidth_bound(self):
        sim, cluster = make_cluster()
        rnic = cluster.server.rnic
        ud = rnic.outbound_service_us(8192, "ud_send")
        rc = rnic.outbound_service_us(8192, "write")
        assert ud == pytest.approx(rc, rel=0.05)
