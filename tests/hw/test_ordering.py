"""Tests for the delivery-ordering guarantees the RFP protocol needs.

RFP's mode-flag correctness (no duplicate/unnecessary replies) rests on
RC's in-order delivery: two writes posted back to back on the same QP
land at the server in posting order.  These tests pin that property of
the model down explicitly.
"""

import pytest

from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator


def make_rig():
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    client_ep, server_ep = cluster.connect(cluster.machines[1], cluster.server)
    return sim, cluster, client_ep, server_ep


class TestSameQpOrdering:
    def test_back_to_back_writes_deliver_in_post_order(self):
        sim, cluster, client_ep, _ = make_rig()
        local = cluster.machines[1].register_memory(64)
        remote = cluster.server.register_memory(64)
        deliveries = []

        def body(sim):
            # Post both without waiting (the flag write + next request
            # pattern): delivery order must match posting order.
            local.write_local(0, b"first---")
            first = client_ep.post_write(
                local, 0, remote, 0, 8, on_delivery=lambda: deliveries.append("first")
            )
            local.write_local(8, b"second--")
            second = client_ep.post_write(
                local, 8, remote, 8, 8, on_delivery=lambda: deliveries.append("second")
            )
            yield first
            yield second

        sim.process(body(sim))
        sim.run()
        assert deliveries == ["first", "second"]

    def test_many_pipelined_writes_stay_ordered(self):
        sim, cluster, client_ep, _ = make_rig()
        local = cluster.machines[1].register_memory(256)
        remote = cluster.server.register_memory(256)
        deliveries = []
        completions = []

        def body(sim):
            events = []
            for index in range(20):
                events.append(
                    client_ep.post_write(
                        local,
                        index,
                        remote,
                        index,
                        1,
                        on_delivery=lambda i=index: deliveries.append(i),
                    )
                )
            for event in events:
                value = yield event
                completions.append(value)

        sim.process(body(sim))
        sim.run()
        assert deliveries == list(range(20))
        assert len(completions) == 20

    def test_flag_then_request_pattern(self):
        """The exact switch-back race: a 1-byte flag write posted before
        the next request write must be seen first by the server."""
        sim, cluster, client_ep, _ = make_rig()
        local = cluster.machines[1].register_memory(128)
        flag_region = cluster.server.register_memory(8)
        request_region = cluster.server.register_memory(64)
        order = []

        def body(sim):
            local.write_local(0, b"\x00")
            flag_done = client_ep.post_write(
                local, 0, flag_region, 0, 1, on_delivery=lambda: order.append("flag")
            )
            yield flag_done
            local.write_local(1, b"request!")
            yield client_ep.post_write(
                local, 1, request_region, 0, 8,
                on_delivery=lambda: order.append("request"),
            )

        sim.process(body(sim))
        sim.run()
        assert order == ["flag", "request"]

    def test_send_stream_ordered_with_writes_in_flight(self):
        sim, cluster, client_ep, server_ep = make_rig()
        received = []

        def server(sim):
            for _ in range(10):
                received.append((yield server_ep.recv()))

        def client(sim):
            for i in range(10):
                yield client_ep.post_send(bytes([i]))

        sim.process(server(sim))
        sim.process(client(sim))
        sim.run()
        assert received == [bytes([i]) for i in range(10)]
