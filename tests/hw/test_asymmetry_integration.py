"""Integration tests: the paper's §2.2 microbenchmarks emerge from the model.

These mirror the experiments behind Figures 3-5: synchronous one-sided
operation loops, one op in flight per thread, measured over a fixed window.
"""

import pytest

from repro.hw import CLUSTER_EUROSYS17, CONNECTX3, build_cluster
from repro.sim import Simulator, ThroughputMeter


def sync_read_loop(sim, endpoint, local, remote, size, meter, post_cpu):
    """A client thread issuing back-to-back synchronous RDMA Reads."""
    while True:
        yield sim.timeout(post_cpu)
        yield endpoint.post_read(local, 0, remote, 0, size)
        meter.record(sim.now)


def sync_write_loop(sim, endpoint, local, remote, size, meter, post_cpu):
    """A server thread issuing back-to-back synchronous RDMA Writes."""
    while True:
        yield sim.timeout(post_cpu)
        yield endpoint.post_write(local, 0, remote, 0, size)
        meter.record(sim.now)


def run_inbound_benchmark(client_threads_per_machine, size=32, window=3000.0):
    """7 client machines issue sync Reads at the server; report MOPS."""
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    server_mr = cluster.server.register_memory(1 << 20)
    meter = ThroughputMeter(window_start=window * 0.2, window_end=window)
    post_cpu = CONNECTX3.post_cpu_us
    for machine in cluster.client_machines:
        for _ in range(client_threads_per_machine):
            endpoint, _ = cluster.connect(machine, cluster.server)
            machine.rnic.register_issuer()
            local = machine.register_memory(8192)
            sim.process(
                sync_read_loop(sim, endpoint, local, server_mr, size, meter, post_cpu)
            )
    sim.run(until=window)
    return meter.mops(elapsed=window * 0.8)


def run_outbound_benchmark(server_threads, size=32, window=3000.0):
    """Server threads issue sync Writes to 7 client machines; report MOPS."""
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    meter = ThroughputMeter(window_start=window * 0.2, window_end=window)
    post_cpu = CONNECTX3.post_cpu_us
    for index in range(server_threads):
        client = cluster.client_machines[index % len(cluster.client_machines)]
        _, server_endpoint = cluster.connect(client, cluster.server)
        cluster.server.rnic.register_issuer()
        local = cluster.server.register_memory(8192)
        remote = client.register_memory(8192)
        sim.process(
            sync_write_loop(sim, server_endpoint, local, remote, size, meter, post_cpu)
        )
    sim.run(until=window)
    return meter.mops(elapsed=window * 0.8)


class TestFig3Asymmetry:
    def test_inbound_peak_near_paper_value(self):
        mops = run_inbound_benchmark(client_threads_per_machine=5)
        assert mops == pytest.approx(11.26, rel=0.08)

    def test_outbound_saturates_near_paper_value(self):
        mops = run_outbound_benchmark(server_threads=4)
        assert mops == pytest.approx(2.11, rel=0.10)

    def test_one_server_thread_cannot_saturate_outbound(self):
        single = run_outbound_benchmark(server_threads=1)
        saturated = run_outbound_benchmark(server_threads=4)
        assert single < 0.75 * saturated

    def test_asymmetry_factor_about_five(self):
        inbound = run_inbound_benchmark(client_threads_per_machine=5)
        outbound = run_outbound_benchmark(server_threads=4)
        assert 4.0 < inbound / outbound < 6.5


class TestFig4ClientScaling:
    def test_inbound_declines_with_excess_client_threads(self):
        """Fig. 4: aggregate in-bound sags once client threads pass ~35."""
        at_35 = run_inbound_benchmark(client_threads_per_machine=5)
        at_70 = run_inbound_benchmark(client_threads_per_machine=10)
        assert at_70 < at_35
        # The decline is mild (paper shows ~10-20%), not a collapse.
        assert at_70 > 0.70 * at_35

    def test_few_clients_cannot_saturate(self):
        at_7 = run_inbound_benchmark(client_threads_per_machine=1)
        at_35 = run_inbound_benchmark(client_threads_per_machine=5)
        assert at_7 < 0.75 * at_35


class TestFig5SizeSweep:
    def test_directions_converge_at_2kb(self):
        inbound = run_inbound_benchmark(client_threads_per_machine=5, size=2048)
        outbound = run_outbound_benchmark(server_threads=4, size=2048)
        assert outbound == pytest.approx(inbound, rel=0.30)

    def test_inbound_wins_big_below_2kb(self):
        inbound = run_inbound_benchmark(client_threads_per_machine=5, size=512)
        outbound = run_outbound_benchmark(server_threads=4, size=512)
        assert inbound > 2.5 * outbound
