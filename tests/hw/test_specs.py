"""Unit tests for hardware specs and presets."""

import pytest

from repro.errors import HardwareModelError
from repro.hw import CLUSTER_EUROSYS17, CONNECTX2, CONNECTX3, CONNECTX4
from repro.hw.specs import ClusterSpec, MachineSpec, NicSpec


class TestNicSpec:
    def test_connectx3_matches_paper_constants(self):
        assert CONNECTX3.inbound_peak_mops == pytest.approx(11.26)
        assert CONNECTX3.outbound_peak_mops == pytest.approx(2.11)
        assert CONNECTX3.bandwidth_gbps == 40.0

    def test_asymmetry_ratio_about_five(self):
        ratio = CONNECTX3.inbound_peak_mops / CONNECTX3.outbound_peak_mops
        assert 4.5 < ratio < 6.0

    def test_asymmetry_on_all_generations(self):
        for spec in (CONNECTX2, CONNECTX3, CONNECTX4):
            assert spec.inbound_peak_mops > 2 * spec.outbound_peak_mops

    def test_base_times_are_reciprocal_rates(self):
        assert CONNECTX3.inbound_base_us == pytest.approx(1 / 11.26)
        assert CONNECTX3.outbound_base_us == pytest.approx(1 / 2.11)

    def test_effective_bandwidth(self):
        # 40 Gbps == 5000 B/us raw.
        raw = 40.0 * 125.0
        assert CONNECTX3.effective_bandwidth_bytes_per_us == pytest.approx(
            raw * CONNECTX3.bandwidth_efficiency
        )

    def test_scaled_changes_only_bandwidth(self):
        scaled = CONNECTX3.scaled(20.0, name="half")
        assert scaled.bandwidth_gbps == 20.0
        assert scaled.name == "half"
        assert scaled.inbound_peak_mops == CONNECTX3.inbound_peak_mops

    def test_invalid_specs_rejected(self):
        with pytest.raises(HardwareModelError):
            NicSpec("bad", bandwidth_gbps=0, inbound_peak_mops=1, outbound_peak_mops=1)
        with pytest.raises(HardwareModelError):
            NicSpec("bad", bandwidth_gbps=40, inbound_peak_mops=-1, outbound_peak_mops=1)
        with pytest.raises(HardwareModelError):
            # Inverted asymmetry contradicts the model's core assumption.
            NicSpec("bad", bandwidth_gbps=40, inbound_peak_mops=1, outbound_peak_mops=2)


class TestMachineAndClusterSpecs:
    def test_paper_testbed_shape(self):
        assert CLUSTER_EUROSYS17.machines == 8
        assert CLUSTER_EUROSYS17.machine.cores == 16
        assert CLUSTER_EUROSYS17.machine.memory_gb == 96
        assert CLUSTER_EUROSYS17.machine.nic is CONNECTX3

    def test_core_count_validated(self):
        with pytest.raises(HardwareModelError):
            MachineSpec(nic=CONNECTX3, cores=0)

    def test_cluster_needs_two_machines(self):
        with pytest.raises(HardwareModelError):
            ClusterSpec(machine=MachineSpec(nic=CONNECTX3), machines=1)

    def test_negative_switch_latency_rejected(self):
        with pytest.raises(HardwareModelError):
            ClusterSpec(machine=MachineSpec(nic=CONNECTX3), switch_hop_us=-0.1)
