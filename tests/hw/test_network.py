"""Unit tests for the switch/propagation model."""

import pytest

from repro.errors import HardwareModelError
from repro.hw import Network


class TestNetwork:
    def test_two_hops_between_distinct_machines(self):
        network = Network(switch_hop_us=0.1)
        assert network.propagation_us("m0", "m1") == pytest.approx(0.2)

    def test_loopback_is_free(self):
        network = Network(switch_hop_us=0.1)
        assert network.propagation_us("m3", "m3") == 0.0

    def test_symmetric(self):
        network = Network(switch_hop_us=0.25)
        assert network.propagation_us("a", "b") == network.propagation_us("b", "a")

    def test_negative_hop_rejected(self):
        with pytest.raises(HardwareModelError):
            Network(switch_hop_us=-0.1)

    def test_zero_latency_fabric_allowed(self):
        assert Network(switch_hop_us=0.0).propagation_us("a", "b") == 0.0
