"""Tests for the standard YCSB workload presets."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import WorkloadSpec, ycsb_preset


class TestYcsbPresets:
    def test_workload_a_is_update_heavy(self):
        spec = ycsb_preset("A", records=1000)
        assert spec.get_fraction == 0.50
        assert spec.distribution == "zipfian"
        assert spec.records == 1000

    def test_workload_b_is_read_mostly(self):
        spec = ycsb_preset("b")
        assert spec.get_fraction == 0.95
        assert spec.distribution == "zipfian"

    def test_workload_c_is_read_only(self):
        spec = ycsb_preset("C")
        assert spec.get_fraction == 1.00

    def test_workload_f_mix(self):
        assert ycsb_preset("F").get_fraction == 0.50

    def test_unknown_preset_rejected(self):
        with pytest.raises(WorkloadError):
            ycsb_preset("E")  # scans are not expressible over GET/PUT

    def test_presets_are_valid_specs(self):
        for letter in ("A", "B", "C", "F"):
            spec = ycsb_preset(letter, records=64, seed=9)
            assert isinstance(spec, WorkloadSpec)
            assert spec.seed == 9
