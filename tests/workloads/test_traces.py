"""Tests for trace record/replay."""

import io

import pytest

from repro.errors import WorkloadError
from repro.workloads import Operation, WorkloadSpec, YcsbWorkload
from repro.workloads.traces import read_trace, record_workload, write_trace


def sample_ops():
    return [
        Operation(True, b"key-1", None),
        Operation(False, b"key-2", b"value-2"),
        Operation(False, b"k", b""),
        Operation(True, bytes(range(16)), None),
    ]


class TestRoundTrip:
    def test_memory_round_trip(self):
        buffer = io.BytesIO()
        assert write_trace(sample_ops(), buffer) == 4
        buffer.seek(0)
        assert list(read_trace(buffer)) == sample_ops()

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "ops.trace")
        write_trace(sample_ops(), path)
        assert list(read_trace(path)) == sample_ops()

    def test_empty_trace(self):
        buffer = io.BytesIO()
        assert write_trace([], buffer) == 0
        buffer.seek(0)
        assert list(read_trace(buffer)) == []

    def test_binary_payloads_preserved(self):
        operations = [Operation(False, bytes(range(256))[:64], bytes(range(255, -1, -1)))]
        buffer = io.BytesIO()
        write_trace(operations, buffer)
        buffer.seek(0)
        assert list(read_trace(buffer)) == operations


class TestValidation:
    def test_bad_magic_rejected(self):
        with pytest.raises(WorkloadError):
            list(read_trace(io.BytesIO(b"NOPE\x01")))

    def test_truncated_header_rejected(self):
        buffer = io.BytesIO()
        write_trace(sample_ops()[:1], buffer)
        data = buffer.getvalue()[:-3]
        with pytest.raises(WorkloadError):
            list(read_trace(io.BytesIO(data + b"\x01")))

    def test_truncated_body_rejected(self):
        buffer = io.BytesIO()
        write_trace([Operation(False, b"kk", b"vvvv")], buffer)
        data = buffer.getvalue()[:-2]
        with pytest.raises(WorkloadError):
            list(read_trace(io.BytesIO(data)))

    def test_count_validated(self):
        workload = YcsbWorkload(WorkloadSpec(records=16))
        with pytest.raises(WorkloadError):
            record_workload(workload, "c0", 0, io.BytesIO())


class TestRecordWorkload:
    def test_captures_exact_stream(self):
        spec = WorkloadSpec(records=64)
        buffer = io.BytesIO()
        recorded = record_workload(YcsbWorkload(spec), "c0", 50, buffer)
        assert recorded == 50
        buffer.seek(0)
        replayed = list(read_trace(buffer))
        import itertools

        fresh = list(itertools.islice(YcsbWorkload(spec).operations("c0"), 50))
        assert replayed == fresh

    def test_replay_identical_across_systems(self):
        """The point of traces: two different simulations consume byte-
        identical operation sequences."""
        spec = WorkloadSpec(records=32, get_fraction=0.5)
        buffer = io.BytesIO()
        record_workload(YcsbWorkload(spec), "c0", 40, buffer)
        first = list(read_trace(io.BytesIO(buffer.getvalue())))
        second = list(read_trace(io.BytesIO(buffer.getvalue())))
        assert first == second
        assert any(not op.is_get for op in first)
