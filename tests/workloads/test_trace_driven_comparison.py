"""Integration: a recorded trace drives two systems identically."""

import io

from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator
from repro.workloads import (
    WorkloadSpec,
    YcsbWorkload,
    read_trace,
    record_workload,
)


def run_system_on_trace(build, trace_bytes):
    """Run one KV system over a recorded trace; returns GET results."""
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    client = build(sim, cluster)
    observations = []

    def body(sim):
        for op in read_trace(io.BytesIO(trace_bytes)):
            if op.is_get:
                observations.append((op.key, (yield from client.get(op.key))))
            else:
                yield from client.put(op.key, op.value)

    sim.process(body(sim))
    sim.run()
    return observations


def build_jakiro(sim, cluster):
    from repro.kv import Jakiro

    jakiro = Jakiro(sim, cluster, threads=2)
    return jakiro.connect(cluster.client_machines[0])


def build_serverreply(sim, cluster):
    from repro.baselines import build_serverreply_kv

    kv = build_serverreply_kv(sim, cluster, threads=2)
    return kv.connect(cluster.client_machines[0])


class TestTraceDrivenComparison:
    def test_two_systems_agree_on_every_get(self):
        """Replaying one trace against RFP-Jakiro and ServerReply-KV must
        produce byte-identical GET results — different transports, same
        semantics."""
        spec = WorkloadSpec(records=64, get_fraction=0.6, seed=5)
        buffer = io.BytesIO()
        record_workload(YcsbWorkload(spec), "driver", 120, buffer)
        trace = buffer.getvalue()

        jakiro_results = run_system_on_trace(build_jakiro, trace)
        reply_results = run_system_on_trace(build_serverreply, trace)
        assert len(jakiro_results) > 0
        assert jakiro_results == reply_results

    def test_gets_after_puts_observe_the_put(self):
        spec = WorkloadSpec(records=32, get_fraction=0.5, seed=9)
        buffer = io.BytesIO()
        record_workload(YcsbWorkload(spec), "driver", 100, buffer)
        trace = buffer.getvalue()
        results = run_system_on_trace(build_jakiro, trace)
        # Replay the trace logically to compute expected visibility.
        expected = {}
        position = 0
        for op in read_trace(io.BytesIO(trace)):
            if op.is_get:
                key, observed = results[position]
                assert key == op.key
                assert observed == expected.get(op.key)
                position += 1
            else:
                expected[op.key] = op.value
