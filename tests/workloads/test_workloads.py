"""Unit tests for workload generation."""

import itertools

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    FacebookValues,
    FixedValues,
    KeySpace,
    UniformValues,
    WorkloadSpec,
    YcsbWorkload,
    ZipfSampler,
)


class TestZipfSampler:
    def test_ranks_in_range(self):
        sampler = ZipfSampler(population=1000, exponent=0.99)
        rng = np.random.default_rng(0)
        ranks = sampler.sample(rng, 10_000)
        assert ranks.min() >= 0
        assert ranks.max() < 1000

    def test_rank_zero_is_hottest(self):
        sampler = ZipfSampler(population=1000, exponent=0.99)
        rng = np.random.default_rng(0)
        ranks = sampler.sample(rng, 50_000)
        counts = np.bincount(ranks, minlength=1000)
        assert counts[0] == counts.max()
        assert counts[0] > 10 * counts[500:].mean()

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(population=200, exponent=0.99)
        total = sum(sampler.probability(r) for r in range(200))
        assert total == pytest.approx(1.0)

    def test_hot_to_mean_ratio_grows_with_population(self):
        """The paper quotes ~1e5 for its population; the ratio must grow
        steeply with N under s=.99."""
        small = ZipfSampler(1000, 0.99).hot_to_mean_ratio()
        large = ZipfSampler(100_000, 0.99).hot_to_mean_ratio()
        assert large > 5 * small
        assert large > 1000

    def test_exponent_zero_is_uniform(self):
        sampler = ZipfSampler(population=100, exponent=0.0)
        assert sampler.probability(0) == pytest.approx(0.01)
        assert sampler.probability(99) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0)
        with pytest.raises(WorkloadError):
            ZipfSampler(10, exponent=-1)
        with pytest.raises(WorkloadError):
            ZipfSampler(10).probability(10)


class TestKeySpace:
    def test_fixed_width_keys(self):
        keys = KeySpace(1000, key_bytes=16)
        assert len(keys.key(0)) == 16
        assert len(keys.key(999)) == 16
        assert keys.key(0) != keys.key(999)

    def test_keys_unique(self):
        keys = KeySpace(500, key_bytes=16)
        assert len(set(keys)) == 500

    def test_out_of_range_rejected(self):
        keys = KeySpace(10)
        with pytest.raises(WorkloadError):
            keys.key(10)
        with pytest.raises(WorkloadError):
            keys.key(-1)

    def test_width_must_fit_count(self):
        with pytest.raises(WorkloadError):
            KeySpace(10**9, key_bytes=4)


class TestValueSizes:
    def test_fixed(self):
        dist = FixedValues(32)
        rng = np.random.default_rng(0)
        assert dist.draw(rng) == 32
        assert dist.mean() == 32

    def test_uniform_range(self):
        dist = UniformValues(32, 8192)
        rng = np.random.default_rng(0)
        draws = [dist.draw(rng) for _ in range(2000)]
        assert min(draws) >= 32
        assert max(draws) <= 8192
        assert abs(np.mean(draws) - dist.mean()) < 300

    def test_facebook_mostly_small(self):
        dist = FacebookValues()
        rng = np.random.default_rng(0)
        draws = [dist.draw(rng) for _ in range(5000)]
        assert np.median(draws) < 50
        assert max(draws) > 100  # has a tail

    def test_validation(self):
        with pytest.raises(WorkloadError):
            FixedValues(-1)
        with pytest.raises(WorkloadError):
            UniformValues(100, 10)
        with pytest.raises(WorkloadError):
            FacebookValues(tail_prob=1.5)


class TestWorkloadSpec:
    def test_paper_default_description(self):
        spec = WorkloadSpec()
        assert "95% GET" in spec.describe()
        assert "uniform" in spec.describe()

    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(get_fraction=1.5)
        with pytest.raises(WorkloadError):
            WorkloadSpec(distribution="gaussian")
        with pytest.raises(WorkloadError):
            WorkloadSpec(records=0)


class TestYcsbWorkload:
    def test_dataset_matches_spec(self):
        workload = YcsbWorkload(WorkloadSpec(records=100))
        pairs = list(workload.dataset())
        assert len(pairs) == 100
        assert all(len(k) == 16 for k, _ in pairs)
        assert all(len(v) == 32 for _, v in pairs)

    def test_get_fraction_respected(self):
        workload = YcsbWorkload(WorkloadSpec(records=100, get_fraction=0.95))
        ops = list(itertools.islice(workload.operations("c0"), 5000))
        gets = sum(1 for op in ops if op.is_get)
        assert 0.93 < gets / len(ops) < 0.97

    def test_puts_carry_values(self):
        workload = YcsbWorkload(WorkloadSpec(records=100, get_fraction=0.0))
        ops = list(itertools.islice(workload.operations("c0"), 50))
        assert all(not op.is_get and op.value is not None for op in ops)

    def test_streams_deterministic_per_client(self):
        spec = WorkloadSpec(records=1000)
        a = list(itertools.islice(YcsbWorkload(spec).operations("c0"), 100))
        b = list(itertools.islice(YcsbWorkload(spec).operations("c0"), 100))
        assert a == b

    def test_distinct_clients_distinct_streams(self):
        workload = YcsbWorkload(WorkloadSpec(records=1000))
        a = list(itertools.islice(workload.operations("c0"), 100))
        b = list(itertools.islice(workload.operations("c1"), 100))
        assert a != b

    def test_zipfian_concentrates_on_hot_keys(self):
        spec = WorkloadSpec(records=10_000, distribution="zipfian")
        workload = YcsbWorkload(spec)
        ops = list(itertools.islice(workload.operations("c0"), 20_000))
        counts = {}
        for op in ops:
            counts[op.key] = counts.get(op.key, 0) + 1
        top = max(counts.values())
        assert top > 50  # the hottest key dominates
        assert len(counts) < 10_000  # long tail barely touched

    def test_uniform_spreads_keys(self):
        spec = WorkloadSpec(records=1000, distribution="uniform")
        workload = YcsbWorkload(spec)
        ops = list(itertools.islice(workload.operations("c0"), 20_000))
        counts = {}
        for op in ops:
            counts[op.key] = counts.get(op.key, 0) + 1
        assert max(counts.values()) < 60

    def test_result_sizes_for_sampler(self):
        workload = YcsbWorkload(WorkloadSpec(records=10))
        sizes = workload.result_sizes(500)
        assert len(sizes) == 500
        assert all(s == 32 for s in sizes)
