"""Integration tests: RFP client/server over the simulated cluster."""

import pytest

from repro.core import Mode, RfpClient, RfpConfig, RfpServer
from repro.errors import ProtocolError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator


def echo_handler(payload, ctx):
    """Echo with negligible process time."""
    return payload, 0.0


def make_rig(handler=echo_handler, threads=2, config=None, client_count=1):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    config = config or RfpConfig()
    server = RfpServer(sim, cluster, cluster.server, handler, threads, config)
    clients = [
        RfpClient(sim, cluster.client_machines[i % 7], server, config)
        for i in range(client_count)
    ]
    return sim, cluster, server, clients


def drive(sim, client, payloads):
    """Run a sequence of calls on one client; returns responses."""

    def body(sim):
        responses = []
        for payload in payloads:
            response = yield from client.call(payload)
            responses.append(response)
        return responses

    return sim.process(body(sim))


class TestBasicRpc:
    def test_echo_round_trip(self):
        sim, _, _, (client,) = make_rig()
        proc = drive(sim, client, [b"hello rfp"])
        sim.run()
        assert proc.value == [b"hello rfp"]

    def test_many_sequential_calls(self):
        sim, _, server, (client,) = make_rig()
        payloads = [f"call-{i}".encode() for i in range(50)]
        proc = drive(sim, client, payloads)
        sim.run()
        assert proc.value == payloads
        assert client.stats.calls.value == 50
        assert server.stats.requests.value == 50

    def test_concurrent_clients_are_isolated(self):
        sim, _, _, clients = make_rig(client_count=8, threads=4)
        procs = [
            drive(sim, client, [f"c{i}-{j}".encode() for j in range(20)])
            for i, client in enumerate(clients)
        ]
        sim.run()
        for i, proc in enumerate(procs):
            assert proc.value == [f"c{i}-{j}".encode() for j in range(20)]

    def test_fast_server_keeps_remote_fetch_mode(self):
        sim, _, server, (client,) = make_rig()
        proc = drive(sim, client, [b"x"] * 30)
        sim.run()
        assert proc.value is not None
        assert client.mode is Mode.REMOTE_FETCH
        # The server never issued a single reply (pure in-bound service).
        assert server.stats.replies_sent.value == 0

    def test_fetch_usually_succeeds_first_try_on_fast_server(self):
        sim, _, _, (client,) = make_rig()
        drive(sim, client, [b"y"] * 40)
        sim.run()
        assert client.stats.fetch_attempts.mean() < 1.5

    def test_empty_payload_response(self):
        sim, _, _, (client,) = make_rig(handler=lambda p, c: (b"", 0.0))
        proc = drive(sim, client, [b"query"])
        sim.run()
        assert proc.value == [b""]

    def test_oversized_request_rejected(self):
        sim, _, _, (client,) = make_rig()
        with pytest.raises(ProtocolError):
            # Generator raises on first advance.
            next(client.call(b"z" * (1 << 20)))

    def test_recv_without_send_rejected(self):
        sim, _, _, (client,) = make_rig()
        with pytest.raises(ProtocolError):
            next(client.client_recv())


class TestLargeResponses:
    def test_response_larger_than_fetch_size_needs_two_reads(self):
        big = bytes(range(256)) * 8  # 2048 B
        sim, _, _, (client,) = make_rig(handler=lambda p, c: (big, 0.0))
        proc = drive(sim, client, [b"get-big"])
        sim.run()
        assert proc.value == [big]
        # One successful first fetch + one remainder read.
        assert client.stats.remote_reads.value == 2

    def test_response_exactly_fetch_capacity_is_one_read(self):
        config = RfpConfig(fetch_size=256)
        exact = bytes(248)  # 256 - 8-byte header
        sim, _, _, (client,) = make_rig(
            handler=lambda p, c: (exact, 0.0), config=config
        )
        proc = drive(sim, client, [b"q"])
        sim.run()
        assert proc.value == [exact]
        assert client.stats.remote_reads.value == 1

    def test_response_overflowing_buffer_rejected(self):
        huge = bytes(64 * 1024)
        sim, _, _, (client,) = make_rig(handler=lambda p, c: (huge, 0.0))
        drive(sim, client, [b"q"])
        from repro.sim import SimulationError

        with pytest.raises((ProtocolError, SimulationError)):
            sim.run()


class TestHybridSwitch:
    def slow_handler(self, process_us):
        def handler(payload, ctx):
            return payload, process_us

        return handler

    def test_slow_server_switches_to_server_reply(self):
        """Two consecutive calls with 5 failed retries => switch (§3.2)."""
        sim, _, server, (client,) = make_rig(handler=self.slow_handler(30.0))
        proc = drive(sim, client, [b"a", b"b", b"c", b"d"])
        sim.run()
        assert proc.value == [b"a", b"b", b"c", b"d"]
        assert client.mode is Mode.SERVER_REPLY
        assert client.policy.switches_to_reply == 1
        assert server.stats.replies_sent.value >= 2

    def test_switch_happens_after_two_slow_calls_not_one(self):
        sim, _, _, (client,) = make_rig(handler=self.slow_handler(30.0))
        proc = drive(sim, client, [b"a"])
        sim.run()
        # One slow call alone must not switch.
        assert proc.value == [b"a"]
        assert client.mode is Mode.REMOTE_FETCH

    def test_hybrid_disabled_never_switches(self):
        config = RfpConfig(hybrid_enabled=False)
        sim, _, server, (client,) = make_rig(
            handler=self.slow_handler(30.0), config=config
        )
        proc = drive(sim, client, [b"a", b"b", b"c"])
        sim.run()
        assert proc.value == [b"a", b"b", b"c"]
        assert client.mode is Mode.REMOTE_FETCH
        assert server.stats.replies_sent.value == 0

    def test_switch_back_when_server_speeds_up(self):
        state = {"process": 30.0}

        def handler(payload, ctx):
            return payload, state["process"]

        sim, _, _, (client,) = make_rig(handler=handler)

        def body(sim):
            for _ in range(3):  # drive into server-reply mode
                yield from client.call(b"slow")
            assert client.mode is Mode.SERVER_REPLY
            state["process"] = 0.5  # server load drops
            yield from client.call(b"fast")
            return client.mode

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value is Mode.REMOTE_FETCH
        assert client.policy.switches_to_fetch == 1

    def test_server_reply_mode_still_returns_correct_results(self):
        sim, _, _, (client,) = make_rig(handler=self.slow_handler(30.0))
        payloads = [f"p{i}".encode() for i in range(10)]
        proc = drive(sim, client, payloads)
        sim.run()
        assert proc.value == payloads

    def test_late_reply_resolves_mid_call_switch(self):
        """The response may be buffered before the flag write lands; the
        server must push it anyway (no deadlock)."""
        sim, _, server, (client,) = make_rig(handler=self.slow_handler(9.0))
        proc = drive(sim, client, [b"a", b"b", b"c", b"d", b"e"])
        sim.run()
        assert proc.value == [b"a", b"b", b"c", b"d", b"e"]
        # At least one reply was sent (mid-call or later).
        assert server.stats.replies_sent.value >= 1

    def test_client_cpu_drops_in_server_reply_mode(self):
        """Fig. 15: ~100% busy while fetching, far less when blocked."""
        fetch_sim, _, _, (fetch_client,) = make_rig(handler=self.slow_handler(5.0))
        drive(fetch_sim, fetch_client, [b"x"] * 40)
        fetch_sim.run()
        fetch_util = fetch_client.stats.busy.utilization(fetch_sim.now)

        reply_sim, _, _, (reply_client,) = make_rig(handler=self.slow_handler(30.0))
        drive(reply_sim, reply_client, [b"x"] * 40)
        reply_sim.run()
        reply_util = reply_client.stats.busy.utilization(reply_sim.now)

        assert fetch_util > 0.85
        assert reply_util < 0.30


class TestServerValidation:
    def test_zero_threads_rejected(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        with pytest.raises(ProtocolError):
            RfpServer(sim, cluster, cluster.server, echo_handler, threads=0)

    def test_threads_bounded_by_cores(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        with pytest.raises(ProtocolError):
            RfpServer(sim, cluster, cluster.server, echo_handler, threads=17)

    def test_clients_partitioned_round_robin(self):
        sim, _, server, clients = make_rig(client_count=6, threads=3)
        thread_ids = [client.channel.thread_id for client in clients]
        assert thread_ids == [0, 1, 2, 0, 1, 2]

    def test_response_time_recorded_in_header_units(self):
        sim, _, server, (client,) = make_rig(handler=lambda p, c: (p, 4.0))
        drive(sim, client, [b"q"] * 3)
        sim.run()
        assert server.stats.response_time_us.mean() >= 4.0
