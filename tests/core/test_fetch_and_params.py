"""Unit tests for fetch planning and the §3.2 parameter selection."""

import pytest

from repro.core import (
    RESPONSE_HEADER_BYTES,
    derive_retry_bound,
    derive_size_bounds,
    plan_fetch,
    reads_required,
    select_parameters,
)
from repro.core.params import fetch_size_grid
from repro.errors import ProtocolError
from repro.hw import CONNECTX3, pipeline_service_time


class TestFetchPlanning:
    def test_small_response_needs_one_read(self):
        plan = plan_fetch(total_payload=32, fetch_size=256)
        assert plan.complete_after_first
        assert plan.first_covers == 32
        assert reads_required(32, 256) == 1

    def test_exact_fit_needs_one_read(self):
        capacity = 256 - RESPONSE_HEADER_BYTES
        assert reads_required(capacity, 256) == 1

    def test_one_byte_over_needs_second_read(self):
        capacity = 256 - RESPONSE_HEADER_BYTES
        plan = plan_fetch(capacity + 1, 256)
        assert not plan.complete_after_first
        assert plan.remainder_bytes == 1
        assert plan.remainder_offset == 256

    def test_large_response_remainder_geometry(self):
        plan = plan_fetch(total_payload=1000, fetch_size=256)
        assert plan.first_covers == 256 - RESPONSE_HEADER_BYTES
        assert plan.remainder_offset == 256
        assert plan.remainder_bytes == 1000 - plan.first_covers
        # Ranges tile the response exactly.
        assert plan.first_covers + plan.remainder_bytes == 1000

    def test_empty_response(self):
        assert reads_required(0, 256) == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ProtocolError):
            plan_fetch(-1, 256)


def inbound_iops(size):
    """The model's in-bound IOPS-vs-size curve (Fig. 5)."""
    return 1.0 / pipeline_service_time(
        CONNECTX3.inbound_base_us,
        size,
        CONNECTX3.effective_bandwidth_bytes_per_us,
        CONNECTX3.softmax_order,
    )


SIZES = [32, 64, 128, 192, 256, 384, 512, 640, 768, 1024, 2048, 4096, 8192]


class TestSizeBounds:
    def test_paper_bounds_recovered_from_model_curve(self):
        """The paper derived L=256, H=1024 for the testbed NIC."""
        lower, upper = derive_size_bounds(SIZES, [inbound_iops(s) for s in SIZES])
        assert lower == 256
        assert upper == 1024

    def test_bounds_ordered(self):
        lower, upper = derive_size_bounds(SIZES, [inbound_iops(s) for s in SIZES])
        assert lower <= upper

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ProtocolError):
            derive_size_bounds([1, 2, 3], [1.0, 2.0])

    def test_unsorted_sizes_rejected(self):
        with pytest.raises(ProtocolError):
            derive_size_bounds([64, 32, 128], [1.0, 1.0, 1.0])


class TestRetryBound:
    def test_paper_retry_bound_from_crossover(self):
        """Fig. 9: fetching gains <10% past P=7 us; one fetch RTT ~1.4 us
        => N = 5, exactly the paper's choice."""
        process_times = list(range(1, 16))
        reply = [2.1] * len(process_times)
        # Synthetic Fig. 9 shape: fetching dominated by max(P, fetch rate).
        fetch = [min(5.6, 16.0 / p) for p in process_times]
        retry_bound, crossover = derive_retry_bound(
            process_times, fetch, reply, fetch_round_trip_us=1.4
        )
        assert crossover == 7
        assert retry_bound == 5

    def test_no_crossover_uses_last_point(self):
        retry_bound, crossover = derive_retry_bound(
            [1, 2, 3], [10.0, 9.0, 8.0], [2.0, 2.0, 2.0], fetch_round_trip_us=1.0
        )
        assert crossover == 3
        assert retry_bound == 3

    def test_validation(self):
        with pytest.raises(ProtocolError):
            derive_retry_bound([1], [1.0, 2.0], [1.0], 1.0)
        with pytest.raises(ProtocolError):
            derive_retry_bound([1], [1.0], [1.0], 0.0)


class TestFetchSizeGrid:
    def test_grid_covers_bounds(self):
        grid = fetch_size_grid(256, 1024, step=64)
        assert grid[0] == 256
        assert grid[-1] == 1024
        assert all(b - a == 64 for a, b in zip(grid, grid[1:]))

    def test_unaligned_upper_included(self):
        grid = fetch_size_grid(256, 1000, step=64)
        assert grid[-1] == 1000

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ProtocolError):
            fetch_size_grid(1024, 256)
        with pytest.raises(ProtocolError):
            fetch_size_grid(256, 1024, step=0)


class TestSelectParameters:
    def iops_at(self, retry, fetch):
        return inbound_iops(fetch)

    def test_small_results_pick_smallest_fetch(self):
        """32 B values (paper §4.2): selection lands on F=256."""
        choice = select_parameters(
            result_sizes=[32 + 9] * 100,  # value + kv response framing
            iops_at=self.iops_at,
            retry_upper_bound=5,
            size_lower_bound=256,
            size_upper_bound=1024,
        )
        assert choice.fetch_size == 256
        assert choice.retry_bound == 5

    def test_middle_sizes_pick_covering_fetch(self):
        """Responses of ~560 B: Eq. 2 grows F to cover them in one read
        (half IOPS at F=256 loses to full IOPS at F=576)."""
        sizes = [560] * 100
        choice = select_parameters(
            result_sizes=sizes,
            iops_at=self.iops_at,
            retry_upper_bound=5,
            size_lower_bound=256,
            size_upper_bound=1024,
            size_step=64,
        )
        assert choice.fetch_size >= 560 + 8
        assert choice.fetch_size <= 640

    def test_bimodal_mix_keeps_small_fetch(self):
        """Eq. 2 as published: covering half the results at full IOPS can
        beat covering all of them at a lower IOPS, so a 40/600 B mix
        keeps F = 256 (see EXPERIMENTS.md discussion of Fig. 18)."""
        sizes = [40] * 50 + [600] * 50
        choice = select_parameters(
            result_sizes=sizes,
            iops_at=self.iops_at,
            retry_upper_bound=5,
            size_lower_bound=256,
            size_upper_bound=1024,
            size_step=64,
        )
        assert choice.fetch_size == 256

    def test_uncovered_results_score_half(self):
        constant = lambda r, f: 10.0
        choice = select_parameters(
            result_sizes=[10_000],  # never covered by F in [256, 1024]
            iops_at=constant,
            retry_upper_bound=2,
            size_lower_bound=256,
            size_upper_bound=512,
            size_step=256,
        )
        assert choice.expected_mops == pytest.approx(5.0)

    def test_tie_breaks_prefer_larger_retry_smaller_fetch(self):
        constant = lambda r, f: 10.0
        choice = select_parameters(
            result_sizes=[16],
            iops_at=constant,
            retry_upper_bound=3,
            size_lower_bound=256,
            size_upper_bound=512,
            size_step=128,
        )
        assert choice.retry_bound == 3
        assert choice.fetch_size == 256

    def test_scores_table_is_exhaustive(self):
        choice = select_parameters(
            result_sizes=[32],
            iops_at=self.iops_at,
            retry_upper_bound=2,
            size_lower_bound=256,
            size_upper_bound=512,
            size_step=128,
        )
        assert set(choice.scores) == {
            (r, f) for r in (1, 2) for f in (256, 384, 512)
        }

    def test_empty_sizes_rejected(self):
        with pytest.raises(ProtocolError):
            select_parameters([], self.iops_at, 5, 256, 1024)


class TestResultSampler:
    def test_keeps_everything_under_capacity(self):
        from repro.core import ResultSampler

        sampler = ResultSampler(capacity=100)
        sampler.observe_many(range(50))
        assert sorted(sampler.sizes()) == list(range(50))
        assert sampler.seen == 50

    def test_reservoir_bounded(self):
        from repro.core import ResultSampler

        sampler = ResultSampler(capacity=64)
        sampler.observe_many([7] * 10_000)
        assert len(sampler.sizes()) == 64
        assert sampler.seen == 10_000

    def test_reservoir_is_representative(self):
        from repro.core import ResultSampler

        sampler = ResultSampler(capacity=500, seed=1)
        sampler.observe_many([100] * 5000)
        sampler.observe_many([900] * 5000)
        share = sum(1 for s in sampler.sizes() if s == 900) / 500
        assert 0.4 < share < 0.6

    def test_percentile(self):
        from repro.core import ResultSampler

        sampler = ResultSampler()
        sampler.observe_many(range(101))
        assert sampler.percentile(50) == pytest.approx(50.0)

    def test_empty_sampler_rejects_reads(self):
        from repro.core import ResultSampler

        with pytest.raises(ProtocolError):
            ResultSampler().sizes()

    def test_negative_size_rejected(self):
        from repro.core import ResultSampler

        with pytest.raises(ProtocolError):
            ResultSampler().observe(-1)
