"""Unit tests for the Fig. 7 wire headers."""

import pytest

from repro.core import (
    REQUEST_HEADER_BYTES,
    RESPONSE_HEADER_BYTES,
    RequestHeader,
    ResponseHeader,
)
from repro.errors import ProtocolError


class TestRequestHeader:
    def test_round_trip(self):
        header = RequestHeader(status=1, size=12345)
        packed = header.pack()
        assert len(packed) == REQUEST_HEADER_BYTES
        assert RequestHeader.unpack(packed) == header

    def test_status_zero_round_trip(self):
        header = RequestHeader(status=0, size=7)
        assert RequestHeader.unpack(header.pack()) == header

    def test_size_is_31_bits(self):
        RequestHeader(status=0, size=2**31 - 1).pack()
        with pytest.raises(ProtocolError):
            RequestHeader(status=0, size=2**31).pack()
        with pytest.raises(ProtocolError):
            RequestHeader(status=0, size=-1).pack()

    def test_status_is_one_bit(self):
        with pytest.raises(ProtocolError):
            RequestHeader(status=2, size=0).pack()

    def test_short_buffer_rejected(self):
        with pytest.raises(ProtocolError):
            RequestHeader.unpack(b"\x00\x01")

    def test_unpack_ignores_trailing_payload(self):
        packed = RequestHeader(status=1, size=3).pack() + b"abc"
        assert RequestHeader.unpack(packed).size == 3


class TestResponseHeader:
    def test_round_trip_with_time(self):
        header = ResponseHeader(status=1, size=99, time_tenths_us=123)
        packed = header.pack()
        assert len(packed) == RESPONSE_HEADER_BYTES
        assert ResponseHeader.unpack(packed) == header

    def test_time_us_decoding(self):
        header = ResponseHeader(status=0, size=0, time_tenths_us=57)
        assert header.time_us == pytest.approx(5.7)

    def test_encode_time_rounds_to_tenths(self):
        assert ResponseHeader.encode_time(5.78) == 58
        assert ResponseHeader.encode_time(0.0) == 0

    def test_encode_time_saturates_at_16_bits(self):
        assert ResponseHeader.encode_time(1e9) == 0xFFFF

    def test_encode_negative_time_rejected(self):
        with pytest.raises(ProtocolError):
            ResponseHeader.encode_time(-1.0)

    def test_time_overflow_rejected_on_pack(self):
        with pytest.raises(ProtocolError):
            ResponseHeader(status=0, size=0, time_tenths_us=0x10000).pack()

    def test_short_buffer_rejected(self):
        with pytest.raises(ProtocolError):
            ResponseHeader.unpack(b"\x00" * 4)

    def test_parity_bit_distinguishes_consecutive_responses(self):
        """The 1-bit status implements a parity toggle (stale detection)."""
        first = ResponseHeader(status=1, size=8).pack()
        second = ResponseHeader(status=0, size=8).pack()
        assert ResponseHeader.unpack(first).status != ResponseHeader.unpack(second).status
