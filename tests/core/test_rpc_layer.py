"""Unit tests for the RPC stub layer."""

import pytest

from repro.core import RfpClient, RfpServer, RpcClient, RpcServer
from repro.core.rpc import RPC_APP_ERROR, RPC_NO_FUNCTION, RPC_OK
from repro.errors import ProtocolError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator


def make_rpc_rig(registrations):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    dispatcher = RpcServer()
    for function_id, handler in registrations:
        dispatcher.register(function_id, handler)
    server = RfpServer(sim, cluster, cluster.server, dispatcher.handle, threads=2)
    transport = RfpClient(sim, cluster.client_machines[0], server)
    return sim, RpcClient(transport), dispatcher


def ok_echo(args, ctx):
    return RPC_OK, b"echo:" + args, 0.1


class TestRpcDispatch:
    def test_registered_function_called(self):
        sim, client, _ = make_rpc_rig([(7, ok_echo)])

        def body(sim):
            return (yield from client.call(7, b"payload"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == (RPC_OK, b"echo:payload")

    def test_unknown_function_returns_status(self):
        sim, client, _ = make_rpc_rig([(7, ok_echo)])

        def body(sim):
            return (yield from client.call(8, b""))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == (RPC_NO_FUNCTION, b"")

    def test_application_error_status_propagates(self):
        def failing(args, ctx):
            return RPC_APP_ERROR, b"reason", 0.0

        sim, client, _ = make_rpc_rig([(1, failing)])

        def body(sim):
            return (yield from client.call(1, b""))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == (RPC_APP_ERROR, b"reason")

    def test_multiple_functions_dispatch_independently(self):
        sim, client, _ = make_rpc_rig(
            [(1, lambda a, c: (RPC_OK, b"one", 0.0)),
             (2, lambda a, c: (RPC_OK, b"two", 0.0))]
        )

        def body(sim):
            first = yield from client.call(1, b"")
            second = yield from client.call(2, b"")
            return first, second

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == ((RPC_OK, b"one"), (RPC_OK, b"two"))

    def test_context_carries_client_and_thread(self):
        seen = {}

        def spy(args, ctx):
            seen["client"] = ctx.client_id
            seen["thread"] = ctx.thread_id
            return RPC_OK, b"", 0.0

        sim, client, _ = make_rpc_rig([(3, spy)])

        def body(sim):
            yield from client.call(3, b"")

        sim.process(body(sim))
        sim.run()
        assert seen["client"] >= 1
        assert seen["thread"] in (0, 1)


class TestRpcValidation:
    def test_duplicate_registration_rejected(self):
        dispatcher = RpcServer()
        dispatcher.register(1, ok_echo)
        with pytest.raises(ProtocolError):
            dispatcher.register(1, ok_echo)

    def test_function_id_must_fit_a_byte(self):
        dispatcher = RpcServer()
        with pytest.raises(ProtocolError):
            dispatcher.register(300, ok_echo)

    def test_client_function_id_validated(self):
        sim, client, _ = make_rpc_rig([(1, ok_echo)])
        with pytest.raises(ProtocolError):
            next(client.call(999, b""))

    def test_runt_request_rejected_by_dispatcher(self):
        dispatcher = RpcServer()
        with pytest.raises(ProtocolError):
            dispatcher.handle(b"\x01", context=None)
