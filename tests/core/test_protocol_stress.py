"""Randomized end-to-end stress of the RFP protocol.

One scenario generator drives clients with random payload sizes against
a server whose process time swings between fast and pathological, so
every protocol feature fires within one run: multi-read fetches, slow
calls, mid-call switches, late replies, switch-backs.  The invariant is
absolute: **every call returns exactly its own response** (tagged with
the client id and sequence number), and the run terminates.
"""

import numpy as np
import pytest

from repro.core import Mode, RfpClient, RfpConfig, RfpServer
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator


def run_stress(seed, clients=6, calls=60, max_payload=3000):
    rng = np.random.default_rng(seed)
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    # Server process times: mostly sub-µs, occasionally awful — drawn
    # deterministically per request from the request tag.
    def handler(payload, ctx):
        tag = payload[:16]
        body_len = int.from_bytes(payload[16:20], "little")
        process = float(int.from_bytes(payload[20:24], "little")) / 10.0
        return tag + bytes(body_len), process

    server = RfpServer(sim, cluster, cluster.server, handler, threads=4)
    results = {}

    def client_body(sim, client, client_index):
        local_rng = np.random.default_rng(seed * 1000 + client_index)
        for call_index in range(calls):
            tag = f"{client_index:04d}-{call_index:06d}".encode().ljust(16, b"_")
            body_len = int(local_rng.integers(0, max_payload))
            # ~8% of calls hit a pathological process time (4-30 us).
            if local_rng.random() < 0.08:
                process_tenths = int(local_rng.integers(40, 300))
            else:
                process_tenths = int(local_rng.integers(0, 9))
            request = (
                tag
                + body_len.to_bytes(4, "little")
                + process_tenths.to_bytes(4, "little")
            )
            response = yield from client.call(request)
            # THE invariant: the response is this call's, byte-exact.
            assert response == tag + bytes(body_len), (
                f"client {client_index} call {call_index} got a foreign "
                f"or corrupt response"
            )
        results[client_index] = True

    client_objects = []
    for index in range(clients):
        client = RfpClient(sim, cluster.client_machines[index % 7], server)
        client_objects.append(client)
        sim.process(client_body(sim, client, index))
    sim.run()
    return results, server, client_objects


class TestProtocolStress:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_every_call_gets_its_own_response(self, seed):
        results, server, clients = run_stress(seed)
        assert len(results) == 6  # every client finished every call
        assert server.stats.requests.value == 6 * 60

    def test_stress_actually_exercises_the_hybrid(self):
        """The scenario is only a stress test if the hard paths fire."""
        switched = 0
        multi_read = 0
        replies = 0
        for seed in (1, 2, 3):
            _, server, clients = run_stress(seed)
            replies += server.stats.replies_sent.value
            for client in clients:
                switched += client.policy.switches_to_reply
                if client.stats.fetch_attempts.count:
                    if max(client.stats.fetch_attempts.samples) > 1:
                        multi_read += 1
        assert switched > 0, "no client ever switched to server-reply"
        assert replies > 0, "no reply was ever pushed"
        assert multi_read > 0, "no fetch ever needed a retry"

    def test_switch_backs_happen_and_recover(self):
        _, server, clients = run_stress(seed=2, calls=120)
        switch_backs = sum(c.policy.switches_to_fetch for c in clients)
        assert switch_backs > 0, "no client ever recovered to remote fetching"
        # After a full run dominated by fast calls, clients end fetching.
        fetching = sum(1 for c in clients if c.mode is Mode.REMOTE_FETCH)
        assert fetching >= len(clients) - 1

    def test_deterministic_given_seed(self):
        first = run_stress(seed=7, clients=3, calls=30)[1].stats.requests.value
        second = run_stress(seed=7, clients=3, calls=30)[1].stats.requests.value
        assert first == second
