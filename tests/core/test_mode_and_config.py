"""Unit tests for RfpConfig validation and the hybrid switch policy."""

import pytest

from repro.core import Mode, RfpConfig, SwitchPolicy
from repro.errors import ProtocolError


class TestRfpConfig:
    def test_paper_defaults(self):
        config = RfpConfig()
        assert config.retry_bound == 5
        assert config.fetch_size == 256
        assert config.consecutive_slow_calls == 2
        assert config.switch_back_process_time_us == pytest.approx(7.0)

    def test_with_parameters(self):
        config = RfpConfig().with_parameters(retry_bound=3, fetch_size=640)
        assert (config.retry_bound, config.fetch_size) == (3, 640)
        # Other fields preserved.
        assert config.hybrid_enabled

    def test_invalid_retry_bound(self):
        with pytest.raises(ProtocolError):
            RfpConfig(retry_bound=0)

    def test_fetch_size_must_cover_header(self):
        with pytest.raises(ProtocolError):
            RfpConfig(fetch_size=4)

    def test_fetch_size_within_response_buffer(self):
        with pytest.raises(ProtocolError):
            RfpConfig(fetch_size=65536, response_buffer_bytes=16384)

    def test_consecutive_slow_calls_positive(self):
        with pytest.raises(ProtocolError):
            RfpConfig(consecutive_slow_calls=0)


class TestSwitchPolicy:
    def make(self, **kwargs):
        return SwitchPolicy(RfpConfig(**kwargs))

    def test_starts_in_remote_fetch(self):
        assert self.make().mode is Mode.REMOTE_FETCH

    def test_single_slow_call_does_not_switch(self):
        """§3.2: one unexpectedly long request must not flap the mode."""
        policy = self.make(consecutive_slow_calls=2)
        assert policy.note_slow_call() is False
        assert policy.mode is Mode.REMOTE_FETCH

    def test_two_consecutive_slow_calls_switch(self):
        policy = self.make(consecutive_slow_calls=2)
        assert policy.note_slow_call() is False
        assert policy.note_slow_call() is True
        assert policy.mode is Mode.SERVER_REPLY
        assert policy.switches_to_reply == 1

    def test_fast_call_resets_slow_streak(self):
        policy = self.make(consecutive_slow_calls=2)
        policy.note_slow_call()
        policy.note_fast_call()
        assert policy.note_slow_call() is False
        assert policy.mode is Mode.REMOTE_FETCH

    def test_hybrid_disabled_never_switches(self):
        policy = self.make(hybrid_enabled=False)
        for _ in range(10):
            assert policy.note_slow_call() is False
        assert policy.mode is Mode.REMOTE_FETCH

    def test_switch_back_on_fast_response_time(self):
        policy = self.make(consecutive_slow_calls=1)
        policy.note_slow_call()
        assert policy.mode is Mode.SERVER_REPLY
        assert policy.note_reply_time(9.0) is False
        assert policy.mode is Mode.SERVER_REPLY
        assert policy.note_reply_time(3.0) is True
        assert policy.mode is Mode.REMOTE_FETCH
        assert policy.switches_to_fetch == 1

    def test_switch_back_threshold_is_exclusive(self):
        policy = self.make(consecutive_slow_calls=1, switch_back_process_time_us=7.0)
        policy.note_slow_call()
        assert policy.note_reply_time(7.0) is False
        assert policy.note_reply_time(6.99) is True

    def test_slow_counter_resets_after_switch(self):
        policy = self.make(consecutive_slow_calls=2)
        policy.note_slow_call()
        policy.note_slow_call()
        policy.note_reply_time(1.0)  # back to fetch mode
        # A fresh streak is needed to switch again.
        assert policy.note_slow_call() is False
        assert policy.mode is Mode.REMOTE_FETCH

    def test_observation_in_wrong_mode_rejected(self):
        policy = self.make(consecutive_slow_calls=1)
        with pytest.raises(ValueError):
            policy.note_reply_time(1.0)
        policy.note_slow_call()
        with pytest.raises(ValueError):
            policy.note_fast_call()
        with pytest.raises(ValueError):
            policy.note_slow_call()
