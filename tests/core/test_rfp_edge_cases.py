"""Edge-case tests for the RFP client/server machinery."""

import pytest

from repro.core import Mode, RfpClient, RfpConfig, RfpServer
from repro.core.headers import RESPONSE_HEADER_BYTES
from repro.errors import ProtocolError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator


def make_rig(handler, threads=2, config=None, client_count=1):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    config = config or RfpConfig()
    server = RfpServer(sim, cluster, cluster.server, handler, threads, config)
    clients = [
        RfpClient(sim, cluster.client_machines[i % 7], server, config)
        for i in range(client_count)
    ]
    return sim, cluster, server, clients


def run_calls(sim, client, payloads):
    def body(sim):
        out = []
        for payload in payloads:
            out.append((yield from client.call(payload)))
        return out

    return sim.process(body(sim))


class TestBufferBoundaries:
    def test_request_at_exact_buffer_limit(self):
        config = RfpConfig(request_buffer_bytes=256)
        sim, _, _, (client,) = make_rig(lambda p, c: (b"ok", 0.0), config=config)
        payload = bytes(256 - 4)  # request header is 4 bytes
        proc = run_calls(sim, client, [payload])
        sim.run()
        assert proc.value == [b"ok"]

    def test_request_one_byte_over_limit_rejected(self):
        config = RfpConfig(request_buffer_bytes=256)
        sim, _, _, (client,) = make_rig(lambda p, c: (b"ok", 0.0), config=config)
        with pytest.raises(ProtocolError):
            next(client.call(bytes(253)))

    def test_response_at_exact_buffer_limit(self):
        config = RfpConfig(response_buffer_bytes=512)
        big = bytes(512 - RESPONSE_HEADER_BYTES)
        sim, _, _, (client,) = make_rig(lambda p, c: (big, 0.0), config=config)
        proc = run_calls(sim, client, [b"q"])
        sim.run()
        assert proc.value == [big]

    def test_response_payload_exactly_one_byte(self):
        sim, _, _, (client,) = make_rig(lambda p, c: (b"!", 0.0))
        proc = run_calls(sim, client, [b"q"])
        sim.run()
        assert proc.value == [b"!"]

    def test_fetch_size_equal_to_full_response(self):
        config = RfpConfig(fetch_size=64)
        payload = bytes(64 - RESPONSE_HEADER_BYTES)
        sim, _, _, (client,) = make_rig(lambda p, c: (payload, 0.0), config=config)
        proc = run_calls(sim, client, [b"q"] * 5)
        sim.run()
        assert proc.value == [payload] * 5
        # Exactly one read per call: the boundary is inclusive.
        assert client.stats.remote_reads.value == 5


class TestParityToggle:
    def test_many_alternating_calls_never_cross_responses(self):
        """Consecutive calls alternate parity; each must get *its own*
        response even though the buffer is reused in place."""
        counter = {"n": 0}

        def handler(payload, ctx):
            counter["n"] += 1
            return f"r{counter['n']}".encode(), 0.0

        sim, _, _, (client,) = make_rig(handler)
        proc = run_calls(sim, client, [b"q"] * 64)
        sim.run()
        assert proc.value == [f"r{i}".encode() for i in range(1, 65)]

    def test_zero_length_responses_alternate_correctly(self):
        sim, _, _, (client,) = make_rig(lambda p, c: (b"", 0.0))
        proc = run_calls(sim, client, [b"q"] * 10)
        sim.run()
        assert proc.value == [b""] * 10


class TestServerStats:
    def test_late_reply_counter(self):
        """A mid-call switch whose response was already buffered shows up
        as a late reply."""

        def handler(payload, ctx):
            return payload, 8.6  # slightly beyond the retry window

        sim, _, server, (client,) = make_rig(handler)
        proc = run_calls(sim, client, [b"a", b"b", b"c", b"d"])
        sim.run()
        assert proc.value == [b"a", b"b", b"c", b"d"]
        # Whether the flag lands before or after the publish is a race;
        # either a direct or a late reply must have resolved call 2.
        assert server.stats.replies_sent.value >= 1

    def test_response_time_tally_populated(self):
        sim, _, server, (client,) = make_rig(lambda p, c: (p, 1.0))
        run_calls(sim, client, [b"x"] * 10)
        sim.run()
        assert server.stats.response_time_us.count == 10
        assert server.stats.response_time_us.mean() >= 1.0


class TestServerJitter:
    def test_jitter_disabled_is_deterministic_per_call(self):
        config = RfpConfig(server_sw_jitter_us=0.0)
        sim, _, _, (client,) = make_rig(lambda p, c: (p, 0.5), config=config)
        run_calls(sim, client, [b"x"] * 20)
        sim.run()
        latencies = client.stats.latency_us.samples
        assert max(latencies) - min(latencies) < 1e-9

    def test_jitter_spreads_latency(self):
        config = RfpConfig(server_sw_jitter_us=0.5)
        sim, _, _, (client,) = make_rig(lambda p, c: (p, 0.5), config=config)
        run_calls(sim, client, [b"x"] * 20)
        sim.run()
        latencies = client.stats.latency_us.samples
        assert max(latencies) - min(latencies) > 0.05


class TestClientIsolation:
    def test_one_slow_client_does_not_switch_others(self):
        """Mode flags are per ⟨client, RPC⟩ (§3.2 Discussion): a client
        hammered by slow calls switches alone."""
        slow_ids = set()

        def handler(payload, ctx):
            if payload == b"slow":
                slow_ids.add(ctx.client_id)
                return payload, 30.0
            return payload, 0.2

        sim, _, _, clients = make_rig(handler, threads=2, client_count=3)
        run_calls(sim, clients[0], [b"slow"] * 4)
        run_calls(sim, clients[1], [b"fast"] * 40)
        run_calls(sim, clients[2], [b"fast"] * 40)
        sim.run()
        assert clients[0].mode is Mode.SERVER_REPLY
        assert clients[1].mode is Mode.REMOTE_FETCH
        assert clients[2].mode is Mode.REMOTE_FETCH
