"""Tests for online (R, F) adaptation (§3.2's periodic sampling)."""

import pytest

from repro.bench.calibration import model_inbound_iops
from repro.core import AdaptiveParameterController, RfpClient, RfpConfig, RfpServer
from repro.errors import ProtocolError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator


def make_rig(response_size, client_count=2):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    state = {"size": response_size}

    def handler(payload, ctx):
        return bytes(state["size"]), 0.2

    server = RfpServer(sim, cluster, cluster.server, handler, threads=2)
    clients = [
        RfpClient(sim, cluster.client_machines[i % 7], server)
        for i in range(client_count)
    ]
    return sim, state, clients


def make_controller(sim, clients, **kwargs):
    defaults = dict(
        iops_at=model_inbound_iops(),
        retry_upper_bound=5,
        size_lower_bound=256,
        size_upper_bound=1024,
        interval_us=200.0,
        min_samples=32,
    )
    defaults.update(kwargs)
    return AdaptiveParameterController(sim, clients, **defaults)


def drive(sim, client, calls):
    def body(sim):
        for _ in range(calls):
            yield from client.call(b"q")

    return sim.process(body(sim))


class TestAdaptiveController:
    def test_small_results_keep_small_fetch(self):
        sim, _, clients = make_rig(response_size=32)
        controller = make_controller(sim, clients)
        controller.start()
        for client in clients:
            drive(sim, client, 100)
        sim.run(until=2000.0)
        assert controller.current_parameters == (5, 256)

    def test_growing_results_grow_fetch_size(self):
        """Values grow mid-run: F must follow within an interval."""
        sim, state, clients = make_rig(response_size=32)
        controller = make_controller(sim, clients)
        controller.start()
        for client in clients:
            drive(sim, client, 600)
        sim.schedule(400.0, lambda: state.__setitem__("size", 500))
        sim.run(until=4000.0)
        retry, fetch = controller.current_parameters
        assert fetch >= 500 + 8
        assert retry == 5
        assert len(controller.history) >= 1

    def test_adaptation_reduces_two_read_fetches(self):
        """After F adapts to bigger values, fetches go back to one read."""

        def remote_reads_per_call(adaptive):
            sim, state, clients = make_rig(response_size=480, client_count=1)
            if adaptive:
                controller = make_controller(sim, clients, min_samples=16)
                # The controller ticks forever, so bound the run instead
                # of draining the heap.
                controller.start()
            proc = drive(sim, clients[0], 400)
            sim.run(until=20_000.0)
            client = clients[0]
            assert proc.finished, "drive did not complete within the window"
            return client.stats.remote_reads.value / client.stats.calls.value

        assert remote_reads_per_call(adaptive=True) < remote_reads_per_call(
            adaptive=False
        )

    def test_adapt_once_respects_min_samples(self):
        sim, _, clients = make_rig(response_size=32)
        controller = make_controller(sim, clients, min_samples=1000)
        drive(sim, clients[0], 50)
        sim.run()
        assert controller.adapt_once() is None

    def test_no_spurious_history_when_stable(self):
        sim, _, clients = make_rig(response_size=32)
        controller = make_controller(sim, clients)
        controller.start()
        for client in clients:
            drive(sim, client, 300)
        sim.run(until=3000.0)
        # Initial config already optimal for 32 B: no recorded changes.
        assert controller.history == []

    def test_validation(self):
        sim, _, clients = make_rig(response_size=32)
        with pytest.raises(ProtocolError):
            make_controller(sim, [], min_samples=1)
        with pytest.raises(ProtocolError):
            make_controller(sim, clients, interval_us=0.0)


class TestApplyParameters:
    def test_apply_updates_config_and_policy(self):
        sim, _, clients = make_rig(response_size=32, client_count=1)
        client = clients[0]
        client.apply_parameters(retry_bound=3, fetch_size=640)
        assert client.config.retry_bound == 3
        assert client.config.fetch_size == 640
        assert client.policy.config is client.config

    def test_apply_validates_through_config(self):
        sim, _, clients = make_rig(response_size=32, client_count=1)
        with pytest.raises(ProtocolError):
            clients[0].apply_parameters(retry_bound=0, fetch_size=256)

    def test_new_fetch_size_used_by_next_call(self):
        sim, _, clients = make_rig(response_size=480, client_count=1)
        client = clients[0]

        def body(sim):
            yield from client.call(b"a")  # F=256: two reads
            first = client.stats.remote_reads.value
            client.apply_parameters(5, 640)
            yield from client.call(b"b")  # F=640: one read
            second = client.stats.remote_reads.value - first
            return first, second

        proc = sim.process(body(sim))
        sim.run()
        first, second = proc.value
        assert first == 2
        assert second == 1
