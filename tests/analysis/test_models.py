"""Unit tests + cross-validation of the closed-form models.

The cross-validation tests are the interesting ones: the analytical
predictions and the discrete-event simulator are two independent
derivations of the same quantities; agreement within a few percent is
strong evidence for both.
"""

import pytest

from repro.analysis import (
    predict_inbound_peak,
    predict_outbound_peak,
    predict_rfp_throughput,
    predict_server_bypass_throughput,
    predict_server_reply_throughput,
)
from repro.bench.harness import Scale, run_controlled_process_time
from repro.errors import ReproError
from repro.hw import CONNECTX3


class TestPeakPredictions:
    def test_inbound_peak_matches_spec(self):
        assert predict_inbound_peak(CONNECTX3, 32) == pytest.approx(11.26, rel=0.01)

    def test_outbound_peak_matches_spec(self):
        assert predict_outbound_peak(CONNECTX3, 32) == pytest.approx(2.11, rel=0.01)

    def test_outbound_penalized_by_threads(self):
        few = predict_outbound_peak(CONNECTX3, 32, issuing_threads=4)
        many = predict_outbound_peak(CONNECTX3, 32, issuing_threads=16)
        assert many < few

    def test_ud_send_peak_above_write_peak(self):
        ud = predict_outbound_peak(CONNECTX3, 32, kind="ud_send")
        rc = predict_outbound_peak(CONNECTX3, 32, kind="write")
        assert ud > 1.5 * rc

    def test_bandwidth_dominates_large_payloads(self):
        at_8k = predict_inbound_peak(CONNECTX3, 8192)
        byte_rate = at_8k * 8192
        assert byte_rate == pytest.approx(
            CONNECTX3.effective_bandwidth_bytes_per_us, rel=0.01
        )


class TestStructuralProperties:
    def test_prediction_reports_all_candidates(self):
        prediction = predict_server_reply_throughput(CONNECTX3, 6, 35, 0.2)
        assert prediction.mops == min(prediction.candidates.values())
        assert prediction.bottleneck in prediction.candidates
        assert prediction.margin_over("closed-loop-clients") >= 1.0

    def test_server_reply_bound_by_outbound_at_scale(self):
        prediction = predict_server_reply_throughput(CONNECTX3, 6, 35, 0.2)
        assert prediction.bottleneck == "server-outbound-pipeline"

    def test_rfp_bound_by_inbound_at_scale(self):
        prediction = predict_rfp_throughput(CONNECTX3, 6, 35, 0.2)
        assert prediction.bottleneck == "server-inbound-pipeline"

    def test_rfp_cpu_binds_with_one_thread(self):
        prediction = predict_rfp_throughput(CONNECTX3, 1, 35, 0.2)
        assert prediction.bottleneck == "server-cpu"

    def test_both_cpu_bound_at_long_process_times(self):
        rfp = predict_rfp_throughput(CONNECTX3, 16, 35, 12.0)
        reply = predict_server_reply_throughput(CONNECTX3, 16, 35, 12.0)
        assert rfp.bottleneck == "server-cpu"
        assert reply.bottleneck == "server-cpu"
        # ...and with no networking work left to differentiate them,
        # they converge (the Fig. 14 plateau).
        assert rfp.mops == pytest.approx(reply.mops, rel=0.10)

    def test_big_responses_force_second_read(self):
        small = predict_rfp_throughput(CONNECTX3, 6, 35, 0.2, response_payload=32)
        large = predict_rfp_throughput(CONNECTX3, 6, 35, 0.2, response_payload=2048)
        assert large.mops < 0.6 * small.mops

    def test_bypass_validation(self):
        with pytest.raises(ReproError):
            predict_server_bypass_throughput(CONNECTX3, 0, 21)

    def test_bypass_scales_inversely_with_amplification(self):
        at_2 = predict_server_bypass_throughput(CONNECTX3, 2, 21)
        at_8 = predict_server_bypass_throughput(CONNECTX3, 8, 21)
        assert at_2.mops > 3.0 * at_8.mops


class TestCrossValidation:
    """Model vs simulator — independent derivations must agree."""

    scale = Scale(window_us=2000.0)

    def test_rfp_prediction_matches_simulation(self):
        predicted = predict_rfp_throughput(CONNECTX3, 16, 35, 0.2).mops
        measured = run_controlled_process_time("rfp", 0.2, scale=self.scale)
        assert measured.throughput_mops == pytest.approx(predicted, rel=0.08)

    def test_server_reply_prediction_matches_simulation(self):
        predicted = predict_server_reply_throughput(CONNECTX3, 16, 35, 0.2).mops
        measured = run_controlled_process_time("serverreply", 0.2, scale=self.scale)
        assert measured.throughput_mops == pytest.approx(predicted, rel=0.08)

    @pytest.mark.parametrize("process_us", [1.0, 5.0, 9.0])
    def test_rfp_tracks_process_time_sweep(self, process_us):
        predicted = predict_rfp_throughput(
            CONNECTX3, 16, 35, process_us, config=None
        ).mops
        measured = run_controlled_process_time(
            "rfp-no-switch", process_us, scale=self.scale
        )
        assert measured.throughput_mops == pytest.approx(predicted, rel=0.15)

    def test_bypass_prediction_matches_fig6_point(self):
        from repro.hw import CLUSTER_EUROSYS17, build_cluster
        from repro.paradigms import SyntheticBypassClient
        from repro.sim import Simulator, ThroughputMeter

        k = 6
        predicted = predict_server_bypass_throughput(CONNECTX3, k, 21).mops
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        region = cluster.server.register_memory(1 << 20)
        meter = ThroughputMeter(window_start=500.0, window_end=2000.0)

        def loop(sim, client):
            while True:
                yield from client.request()
                meter.record(sim.now)

        for i in range(21):
            client = SyntheticBypassClient(
                sim, cluster.client_machines[i % 7], cluster, region, k
            )
            sim.process(loop(sim, client))
        sim.run(until=2000.0)
        assert meter.mops(elapsed=1500.0) == pytest.approx(predicted, rel=0.10)
