"""Runtime protocol checker: clean runs stay clean, planted bugs trip.

The planted bug is the torn-read class the checker exists for: a client
that commits the first fetched bytes without checking the response
header parity "receives" results the server has not published yet
(paper §3.1's status-field discipline).
"""

import pytest

from repro.baselines.serverreply_kv import build_serverreply_kv
from repro.core import Mode, RfpClient, RfpServer
from repro.core.headers import RESPONSE_HEADER_BYTES, ResponseHeader
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.kv.jakiro import Jakiro
from repro.lint.invariants import InvariantViolation, RfpInvariantChecker
from repro.sim import Simulator, Tracer


class FetchBeforeFlagClient(RfpClient):
    """Planted bug: commit the first fetch without the parity check."""

    def _fetch_response(self, parity):
        sim = self.sim
        config = self.config
        channel = self.channel
        spin_start = self._call_started_at
        yield sim.timeout(config.client_post_cpu_us)
        self._trace("fetch_read", seq=self.seq, attempt=1, bytes=config.fetch_size)
        yield self.endpoint.post_read(
            self._fetch_landing, 0, channel.response_region, 0, config.fetch_size
        )
        yield sim.timeout(config.client_parse_cpu_us)
        self.stats.remote_reads.increment()
        header = ResponseHeader.unpack(
            self._fetch_landing.read_local(0, RESPONSE_HEADER_BYTES)
        )
        # BUG: no `header.status == parity` check before committing.
        self._trace("fetch_success", seq=self.seq, attempts=1)
        self.stats.fetch_attempts.record(1)
        self.policy.note_fast_call()
        self.stats.busy.add_busy(sim.now - spin_start)
        return self._fetch_landing.read_local(RESPONSE_HEADER_BYTES, header.size)


def make_rig(process_us, client_class=RfpClient):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    tracer = Tracer(sim)
    checker = RfpInvariantChecker().attach(tracer)
    server = RfpServer(
        sim,
        cluster,
        cluster.server,
        lambda payload, context: (payload, process_us),
        threads=2,
        tracer=tracer,
    )
    client = client_class(
        sim, cluster.client_machines[0], server, tracer=tracer
    )
    return sim, checker, server, client


def run_calls(sim, client, count):
    def body(sim):
        for _ in range(count):
            yield from client.call(b"payload")

    sim.process(body(sim))
    sim.run()


class TestPlantedBug:
    def test_fetch_before_ready_trips_the_checker(self):
        # Slow enough that the first fetch read lands before the server
        # publishes; the buggy client commits that unpublished read.
        sim, checker, _server, client = make_rig(
            10.0, client_class=FetchBeforeFlagClient
        )
        run_calls(sim, client, 1)
        assert not checker.ok
        assert any("before the server published" in v for v in checker.violations)
        with pytest.raises(InvariantViolation):
            checker.assert_clean()

    def test_halt_on_violation_raises_at_the_event(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        tracer = Tracer(sim)
        checker = RfpInvariantChecker(halt_on_violation=True).attach(tracer)
        server = RfpServer(
            sim, cluster, cluster.server, lambda p, c: (p, 10.0), threads=2,
            tracer=tracer,
        )
        client = FetchBeforeFlagClient(
            sim, cluster.client_machines[0], server, tracer=tracer
        )
        # The violation is raised inside the client process, so the engine
        # surfaces it as an unhandled process failure chained to the cause.
        with pytest.raises(Exception) as excinfo:
            run_calls(sim, client, 1)
        chain = excinfo.value
        while chain is not None and not isinstance(chain, InvariantViolation):
            chain = chain.__cause__
        assert isinstance(chain, InvariantViolation)


class TestCleanRuns:
    def test_fast_remote_fetch_run_is_clean(self):
        sim, checker, server, client = make_rig(0.2)
        run_calls(sim, client, 10)
        checker.assert_clean()
        assert checker.events_checked > 0
        # Headline §3 claim: the server NIC issued nothing.
        checker.check_nic_accounting(server, expect_inbound_only=True)
        assert checker.ok

    def test_mode_switch_run_is_clean(self):
        sim, checker, server, client = make_rig(30.0)
        run_calls(sim, client, 4)
        assert client.mode is Mode.SERVER_REPLY
        checker.assert_clean()
        # Once switched, pushed replies are legitimate out-bound ops.
        checker.check_nic_accounting(server)
        assert checker.ok

    def test_jakiro_kv_run_is_clean_and_inbound_only(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        # Storing no categories keeps memory flat; observers see all events.
        tracer = Tracer(sim, categories=[])
        checker = RfpInvariantChecker().attach(tracer)
        jakiro = Jakiro(sim, cluster, threads=2, tracer=tracer)
        client = jakiro.connect(cluster.client_machines[0])

        def body():
            for i in range(8):
                key = f"key-{i}".encode()
                yield from client.put(key, b"v" * 64)
                value = yield from client.get(key)
                assert value == b"v" * 64

        sim.process(body())
        sim.run()
        checker.assert_clean()
        checker.check_nic_accounting(jakiro.server, expect_inbound_only=True)
        assert checker.ok

    def test_serverreply_baseline_is_clean(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        tracer = Tracer(sim, categories=[])
        checker = RfpInvariantChecker(initial_mode=Mode.SERVER_REPLY).attach(tracer)
        system = build_serverreply_kv(sim, cluster, threads=2, tracer=tracer)
        client = system.connect(cluster.client_machines[0])

        def body():
            for i in range(6):
                key = f"key-{i}".encode()
                yield from client.put(key, b"w" * 32)
                yield from client.get(key)

        sim.process(body())
        sim.run()
        checker.assert_clean()
        # ServerReply pushes every result: out-bound ops must match.
        checker.check_nic_accounting(system.server)
        assert checker.ok
        assert system.server.machine.rnic.outbound_ops > 0


class TestFixtureWiring:
    def test_rfp_invariants_fixture(self, rfp_invariants):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        tracer = Tracer(sim)
        checker = rfp_invariants(tracer)
        server = RfpServer(
            sim, cluster, cluster.server, lambda p, c: (p, 0.2), threads=2,
            tracer=tracer,
        )
        client = RfpClient(sim, cluster.client_machines[0], server, tracer=tracer)
        run_calls(sim, client, 3)
        if checker is not None:  # only with --rfp-invariants
            assert checker.events_checked > 0
