"""One test class per lint rule, driven by the fixture files."""

import os

from repro.lint import lint_file, lint_source
from repro.lint.rules import ALL_RULES, rule_names

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def lint_fixture(filename, rule_name):
    rules = [rule for rule in ALL_RULES if rule.name == rule_name]
    assert rules, f"unknown rule {rule_name}"
    return lint_file(os.path.join(FIXTURES, filename), rules=rules)


def lint_with(source, rule_name, path="model/component.py"):
    rules = [rule for rule in ALL_RULES if rule.name == rule_name]
    return lint_source(source, path=path, rules=rules)


class TestNoWallClock:
    def test_fixture_violations(self):
        violations = lint_fixture("bad_wall_clock.py", "no-wall-clock")
        assert [v.line for v in violations] == [5, 9, 13]
        assert all(v.rule == "no-wall-clock" for v in violations)
        assert "time.time" in violations[1].message

    def test_sim_code_is_exempt(self):
        source = "import time\n\ndef tick():\n    return time.time()\n"
        assert lint_with(source, "no-wall-clock", path="src/repro/sim/clock.py") == []
        assert len(lint_with(source, "no-wall-clock", path="src/repro/hw/x.py")) == 1


class TestNoGlobalRandom:
    def test_fixture_violations(self):
        violations = lint_fixture("bad_global_random.py", "no-global-random")
        assert [v.line for v in violations] == [3, 9, 13]
        assert "repro.sim.random" in violations[0].message

    def test_default_rng_allowed_inside_sim(self):
        source = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert lint_with(source, "no-global-random", path="src/repro/sim/random.py") == []
        assert len(lint_with(source, "no-global-random")) == 1

    def test_seeded_stream_calls_are_clean(self):
        source = (
            "from repro.sim.random import seeded_rng\n"
            "rng = seeded_rng(7)\nx = rng.random()\n"
        )
        assert lint_with(source, "no-global-random") == []


class TestNoFloatEq:
    def test_fixture_violations(self):
        violations = lint_fixture("bad_float_eq.py", "no-float-eq")
        assert [v.line for v in violations] == [5, 7, 11]

    def test_timey_attribute_access_flagged(self):
        source = "def check(event, cutoff):\n    return event.at_us == cutoff\n"
        (violation,) = lint_with(source, "no-float-eq")
        assert "time-valued" in violation.message

    def test_ordering_comparisons_are_fine(self):
        source = "def check(latency_us, bound_us):\n    return latency_us <= bound_us\n"
        assert lint_with(source, "no-float-eq") == []

    def test_int_literal_comparison_is_fine(self):
        source = "def check(count):\n    return count == 3\n"
        assert lint_with(source, "no-float-eq") == []


class TestUnitsDiscipline:
    def test_fixture_violations(self):
        violations = lint_fixture("bad_units.py", "units-discipline")
        assert [v.line for v in violations] == [4, 8]
        assert "time" in violations[0].message
        assert "size" in violations[1].message

    def test_single_unit_per_dimension_is_fine(self):
        source = "def move(delay_us, size_bytes, other_bytes):\n    pass\n"
        assert lint_with(source, "units-discipline") == []


class TestNoMutableDefault:
    def test_fixture_violations(self):
        violations = lint_fixture("bad_mutable_default.py", "no-mutable-default")
        assert [v.line for v in violations] == [4, 9, 9]

    def test_none_default_is_fine(self):
        source = "def f(samples=None):\n    samples = samples or []\n"
        assert lint_with(source, "no-mutable-default") == []


class TestSimYieldOnly:
    def test_fixture_violations(self):
        (violation,) = lint_fixture("bad_yield.py", "sim-yield-only")
        assert violation.line == 6
        assert "bad_process" in violation.message

    def test_data_generators_are_not_processes(self):
        source = "def gen(items):\n    for item in items:\n        yield item\n"
        assert lint_with(source, "sim-yield-only") == []

    def test_yield_from_helpers_are_fine(self):
        source = (
            "def body(sim, client):\n"
            "    response = yield from client.call(b'x')\n"
            "    yield sim.timeout(1.0)\n"
            "    return response\n"
        )
        assert lint_with(source, "sim-yield-only") == []


class TestCleanFixture:
    def test_clean_file_passes_every_rule(self):
        for name in rule_names():
            assert lint_fixture("clean_example.py", name) == []
