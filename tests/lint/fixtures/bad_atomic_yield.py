"""Lint fixture: yields smuggled into declared-atomic call paths."""

from repro.sim import atomic_section


def wait_for_ack(sim):
    yield sim.timeout(1.0)


def log_outcome(result):
    return result


class Surgeon:
    @atomic_section
    def direct(self, sim):
        yield sim.timeout(1.0)

    @atomic_section
    def transitive(self, sim):
        ack = self._confirm(sim)
        return log_outcome(ack)

    def _confirm(self, sim):
        return wait_for_ack(sim)

    def comment_contract(self, sim):  # sim: atomic
        return wait_for_ack(sim)

    @atomic_section
    def clean(self, result):
        return log_outcome(result)
