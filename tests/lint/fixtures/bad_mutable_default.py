"""Lint fixture: mutable default arguments (no-mutable-default)."""


def append_sample(sample, samples=[]):  # line 4: list display default
    samples.append(sample)
    return samples


def tally(counts={}, *, labels=set()):  # line 9: dict display + set() call
    return counts, labels
