"""Lint fixture: exact float comparisons (no-float-eq)."""


def is_settled(latency_us, deadline):
    if latency_us == 0.25:  # line 5: ==/!= against a float literal
        return True
    return latency_us != deadline  # line 7: timey operand with !=


def near_zero(delay):
    return delay == -0.0  # line 11: signed float literal
