"""Lint fixture: trace-phase schema violations at record call sites."""


class Reporter:
    def __init__(self, tracer):
        self.tracer = tracer

    def typo_label(self, shard):
        self.tracer.record("cluster", "handof", shard=shard)

    def missing_field(self, shard):
        self.tracer.record("cluster", "failover", shard=shard)

    def unknown_category(self):
        self.tracer.record("cluster.extra", "route", shard="s0")

    def extra_field(self, shard):
        self.tracer.record("cluster", "shard_killed", shard=shard, color="red")

    def dynamic_label(self, label):
        self.tracer.record("cluster", label, shard="s0")

    def positional_data(self):
        self.tracer.record("cluster", "shard_killed", "s0")

    def clean(self, shard):
        self.tracer.record("cluster", "shard_killed", shard=shard)

    def clean_splat(self, **data):
        self.tracer.record("cluster", "route", **data)
