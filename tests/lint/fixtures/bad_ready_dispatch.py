"""Lint fixture: atomic sections reaching the engine's direct-delay yield.

``yield 0.5`` is the fast engine's direct-delay dispatch path — no
Event object is ever constructed, but simulated time passes all the
same.  The atomicity analyzer must treat these numeric yields exactly
like ``yield sim.timeout(0.5)`` when proving a declared-atomic region
yield-free.
"""


def settle(sim):
    # Direct-delay dispatch: a bare numeric yield is a real suspension.
    yield 0.5


def pace(sim, jitter):
    # Arithmetic delays ride the same path.
    yield 0.25 + jitter


class Mover:
    def flip(self, sim):  # sim: atomic  (line 22: reaches settle's yield)
        return settle(sim)

    def flip_jittered(self, sim, jitter):  # sim: atomic  (line 25)
        return pace(sim, jitter)

    def flip_now(self, state):  # sim: atomic  -- genuinely yield-free
        state.flag = not state.flag
        return state.flag
