"""Lint fixture: stale cross-yield read-modify-write on shared state."""


class Coordinator:
    def stale_writeback(self, sim):
        ring = self.ring
        yield sim.timeout(1.0)
        self.ring = ring + ["rejoiner"]

    def revalidated(self, sim):
        size = len(self.pending)
        yield sim.timeout(1.0)
        if self.pending:
            self.pending = self.pending[1:]
        return size

    def augmented(self, sim, moved):
        budget = self.moved
        yield sim.timeout(1.0)
        self.moved += moved
        return budget
