"""Lint fixture: one earned suppression, one stale one."""

import time


def stamp():
    return time.time()  # lint: disable=no-wall-clock -- CLI boundary


def compute():
    return 42  # lint: disable=no-wall-clock
