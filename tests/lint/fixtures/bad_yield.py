"""Lint fixture: a simulator process yielding plain values (sim-yield-only)."""


def bad_process(sim, station):
    yield station.submit(1.0)  # fine: ServiceStation.submit returns an Event
    yield "done"  # line 6: non-numeric plain value yielded by a sim process
    yield 1.5  # fine: numeric yields are the engine's direct-delay path


def data_generator(samples):
    # Not a sim process (never yields an event-producing call): data
    # generators may yield plain values freely.
    for sample in samples:
        yield sample * 2
