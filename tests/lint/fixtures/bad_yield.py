"""Lint fixture: a simulator process yielding plain values (sim-yield-only)."""


def bad_process(sim, station):
    yield station.submit(1.0)  # fine: ServiceStation.submit returns an Event
    yield 42  # line 6: plain constant yielded by a sim process


def data_generator(samples):
    # Not a sim process (never yields an event-producing call): data
    # generators may yield plain values freely.
    for sample in samples:
        yield sample * 2
