"""Lint fixture: global RNG state (no-global-random)."""

import random  # line 3: global random module

import numpy as np


def draw():
    return np.random.randint(0, 10)  # line 9: numpy hidden global state


def make_rng():
    return np.random.default_rng(7)  # line 13: ad-hoc generator
