"""Lint fixture: mixed unit suffixes in one signature (units-discipline)."""


def delay_ms(wait_us):  # line 4: mixes ms and us
    return wait_us / 1000.0


def copy_chunk(size_bytes, chunk_kb):  # line 8: mixes bytes and kb
    return size_bytes + chunk_kb * 1024


def fine_signature(delay_us, size_bytes):  # one unit per dimension: clean
    return delay_us, size_bytes
