"""Lint fixture: generator functions registered as status listeners."""


def on_change(node, status):
    yield node


class Watcher:
    def __init__(self, membership):
        membership.subscribe(self._watch)
        membership.subscribe(on_change)
        membership.subscribe(self._note)

    def _watch(self, node, status):
        yield status

    def _note(self, node, status):
        self.last = (node, status)
