"""Lint fixture: a well-behaved simulated component (no violations)."""


def service_loop(sim, station, samples_us):
    for sample_us in samples_us:
        yield station.submit(sample_us)


def near(a_us, b_us, tol_us=1e-9):
    return abs(a_us - b_us) <= tol_us


def chunked(payload, chunk_bytes=256):
    return [
        payload[offset : offset + chunk_bytes]
        for offset in range(0, len(payload), chunk_bytes)
    ]
