"""Lint fixture: wall-clock reads in model code (no-wall-clock)."""

import datetime
import time
from time import perf_counter  # line 5: banned from-import


def stamp():
    return time.time()  # line 9: banned call


def when():
    return datetime.datetime.now()  # line 13: banned call


def spin():
    return perf_counter()  # not flagged: bare-name calls are the import's fault
