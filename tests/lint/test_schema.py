"""Trace-phase schema: call-site rule, helpers, and registry coverage."""

import os

from repro.lint import lint_file, lint_source
from repro.lint.rules import ALL_RULES
from repro.lint.schema import (
    CHECKER_CATEGORIES,
    TRACE_HELPERS,
    TRACE_SCHEMA,
    PhaseSpec,
    check_registry_coverage,
    collect_record_call_sites,
)

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")

SCHEMA_ONLY = [rule for rule in ALL_RULES if rule.name == "trace-schema"]


def lint_with(source, path="model/component.py"):
    return lint_source(source, path=path, rules=SCHEMA_ONLY)


class TestTraceSchemaRule:
    def test_fixture_violations(self):
        violations = lint_file(
            os.path.join(FIXTURES, "bad_trace_schema.py"), rules=SCHEMA_ONLY
        )
        assert [v.line for v in violations] == [9, 12, 15, 18, 21, 24]

    def test_typo_gets_a_suggestion(self):
        violations = lint_file(
            os.path.join(FIXTURES, "bad_trace_schema.py"), rules=SCHEMA_ONLY
        )
        typo = violations[0]
        assert "handof" in typo.message and "'handoff'" in typo.message

    def test_missing_required_field(self):
        violations = lint_file(
            os.path.join(FIXTURES, "bad_trace_schema.py"), rules=SCHEMA_ONLY
        )
        assert "requires field 'successors'" in violations[1].message

    def test_clean_call_sites_pass(self):
        source = (
            "class S:\n"
            "    def ok(self, shard):\n"
            "        self.tracer.record('cluster', 'shard_killed', shard=shard)\n"
        )
        assert lint_with(source) == []

    def test_splat_is_open_but_extras_still_flagged(self):
        clean = (
            "class S:\n"
            "    def ok(self, **data):\n"
            "        self.tracer.record('cluster', 'route', **data)\n"
        )
        assert lint_with(clean) == []
        dirty = (
            "class S:\n"
            "    def bad(self, **data):\n"
            "        self.tracer.record('cluster', 'route', color='red', **data)\n"
        )
        (violation,) = lint_with(dirty)
        assert "'color'" in violation.message

    def test_non_tracer_record_calls_are_ignored(self):
        source = (
            "class S:\n"
            "    def ok(self, meter, value):\n"
            "        meter.record(value)\n"
            "        self.stats.latency_us.record(value)\n"
        )
        assert lint_with(source) == []

    def test_underscore_tracer_receivers_are_checked(self):
        source = (
            "class S:\n"
            "    def bad(self):\n"
            "        self.my_tracer.record('cluster', 'nope')\n"
        )
        (violation,) = lint_with(source)
        assert "unknown phase 'nope'" in violation.message


class TestTraceHelpers:
    def test_helper_call_with_implicit_fields_is_clean(self):
        source = (
            "class RfpClient:\n"
            "    def go(self):\n"
            "        self._trace('fetch_success', seq=1, attempts=2)\n"
        )
        assert lint_with(source) == []

    def test_helper_call_missing_field_is_flagged(self):
        source = (
            "class RfpClient:\n"
            "    def go(self):\n"
            "        self._trace('fetch_success', seq=1)\n"
        )
        (violation,) = lint_with(source)
        assert "requires field 'attempts'" in violation.message

    def test_helper_call_with_typo_label_is_flagged(self):
        source = (
            "class RfpClient:\n"
            "    def go(self):\n"
            "        self._trace('fetch_sucess', seq=1, attempts=2)\n"
        )
        (violation,) = lint_with(source)
        assert "'fetch_success'" in violation.message

    def test_dynamic_label_inside_registered_helper_is_exempt(self):
        source = (
            "class RfpClient:\n"
            "    def _trace(self, label, **data):\n"
            "        self.tracer.record('rfp.client', label, client=1, channel=2, **data)\n"
        )
        assert lint_with(source) == []

    def test_same_method_name_in_other_class_is_not_a_helper(self):
        source = (
            "class Unrelated:\n"
            "    def go(self):\n"
            "        self._trace('whatever', x=1)\n"
        )
        assert lint_with(source) == []


class TestRegistryCoverage:
    REGISTRY = {
        "cluster": {
            "route": PhaseSpec("route", frozenset({"shard"})),
            "shard_killed": PhaseSpec(
                "shard_killed", frozenset({"shard"}), checked=False
            ),
        }
    }

    def test_real_registry_is_consistent(self):
        assert check_registry_coverage() == []

    def test_handled_but_undeclared_phase_is_reported(self):
        problems = check_registry_coverage(
            registry=self.REGISTRY,
            handled={"ClusterInvariantChecker": {"route", "mystery"}},
        )
        assert any("mystery" in p for p in problems)

    def test_declared_checked_but_unhandled_is_reported(self):
        problems = check_registry_coverage(
            registry=self.REGISTRY,
            handled={"ClusterInvariantChecker": set()},
        )
        assert any("cluster/route" in p and "no checker handles" in p for p in problems)

    def test_declared_unchecked_but_handled_is_reported(self):
        problems = check_registry_coverage(
            registry=self.REGISTRY,
            handled={"ClusterInvariantChecker": {"route", "shard_killed"}},
        )
        assert any("shard_killed" in p and "checked=False" in p for p in problems)

    def test_unmapped_checker_is_reported(self):
        problems = check_registry_coverage(
            registry=self.REGISTRY,
            handled={"BrandNewChecker": {"route"}},
        )
        assert any("BrandNewChecker" in p for p in problems)

    def test_every_checker_has_categories(self):
        assert set(CHECKER_CATEGORIES) == {
            "RfpInvariantChecker",
            "ClusterInvariantChecker",
        }


class TestCallSiteDiscovery:
    def test_known_sites_are_discovered(self):
        sites = collect_record_call_sites([SRC])
        labels = {(category, label) for _p, _l, category, label in sites}
        # Direct tracer.record sites across the cluster layer.
        for expected in (
            ("cluster", "handoff"),
            ("cluster", "transfer"),
            ("cluster", "transfer_abort"),
            ("cluster", "failover"),
            ("cluster", "shard_killed"),
            ("rfp.server", "response_published"),
        ):
            assert expected in labels, f"discovery lost {expected}"
        # Helper sites resolve to the helper's category.
        client_labels = {
            label for _p, _l, category, label in sites if category == "rfp.client"
        }
        assert "request_sent" in client_labels
        assert "call_done" in client_labels

    def test_every_discovered_literal_site_is_declared(self):
        for path, lineno, category, label in collect_record_call_sites([SRC]):
            if category is None:
                continue
            assert category in TRACE_SCHEMA, f"{path}:{lineno}: {category}"
            if label is not None:
                assert label in TRACE_SCHEMA[category], f"{path}:{lineno}: {label}"

    def test_dynamic_labels_only_inside_registered_helpers(self):
        dynamic = [
            (path, lineno)
            for path, lineno, category, label in collect_record_call_sites([SRC])
            if label is None
        ]
        # The only dynamic-label site is the RfpClient._trace body itself,
        # which the schema rule exempts because the helper is registered.
        assert len(dynamic) <= 1
        for path, _lineno in dynamic:
            assert path.endswith("core/client.py"), path

    def test_helper_registry_matches_source(self):
        assert ("RfpClient", "_trace") in TRACE_HELPERS
        helper = TRACE_HELPERS[("RfpClient", "_trace")]
        assert helper.category == "rfp.client"
        assert helper.implicit == frozenset({"client", "channel"})
