"""Engine behaviour: pragmas, discovery, sorting, and the CLI."""

import os
import subprocess
import sys

from repro.lint import lint_paths, lint_source
from repro.lint.engine import iter_python_files

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))

BAD_CALL = "import time\n\n\ndef stamp():\n    return time.time()\n"


class TestPragmas:
    def test_named_disable_suppresses_that_rule(self):
        source = BAD_CALL.replace(
            "time.time()", "time.time()  # lint: disable=no-wall-clock"
        )
        assert lint_source(source) == []

    def test_named_disable_leaves_other_rules_alone(self):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def f(samples=[]):  # lint: disable=no-wall-clock\n"
            "    return time.time(), samples\n"
        )
        violations = lint_source(source)
        assert [v.rule for v in violations] == [
            "no-mutable-default",
            "no-wall-clock",
        ]

    def test_bare_disable_suppresses_everything_on_the_line(self):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def f(samples=[]):  # lint: disable\n"
            "    return samples\n"
        )
        assert lint_source(source) == []

    def test_skip_file_within_first_five_lines(self):
        source = "# lint: skip-file\n" + BAD_CALL
        assert lint_source(source) == []

    def test_skip_file_after_line_five_does_not_count(self):
        source = "\n\n\n\n\n# lint: skip-file\n" + BAD_CALL
        assert len(lint_source(source)) == 1


class TestEngineEdges:
    def test_syntax_error_is_reported_not_raised(self):
        (violation,) = lint_source("def broken(:\n", path="x.py")
        assert violation.rule == "syntax-error"
        assert violation.path == "x.py"

    def test_violation_format_is_grep_friendly(self):
        (violation,) = lint_source(BAD_CALL, path="pkg/mod.py")
        line = violation.format()
        assert line.startswith("pkg/mod.py:5:")
        assert "[no-wall-clock]" in line

    def test_results_are_sorted_and_deterministic(self):
        first = lint_paths([FIXTURES])
        second = lint_paths([FIXTURES])
        assert first == second
        keys = [(v.path, v.line, v.col, v.rule) for v in first]
        assert keys == sorted(keys)


class TestDiscovery:
    def test_walk_finds_fixture_files_sorted(self):
        names = [os.path.basename(p) for p in iter_python_files([FIXTURES])]
        assert names == sorted(names)
        assert "bad_wall_clock.py" in names
        assert "clean_example.py" in names

    def test_direct_file_path_passes_through(self):
        target = os.path.join(FIXTURES, "bad_units.py")
        assert list(iter_python_files([target])) == [target]

    def test_non_python_files_are_ignored(self):
        readme = os.path.join(REPO_ROOT, "README.md")
        assert list(iter_python_files([readme])) == []


class TestCli:
    def run_cli(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )

    def test_violations_exit_1_and_print_positions(self):
        result = self.run_cli(os.path.join(FIXTURES, "bad_units.py"))
        assert result.returncode == 1
        assert "units-discipline" in result.stdout

    def test_clean_file_exits_0(self):
        result = self.run_cli(os.path.join(FIXTURES, "clean_example.py"))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_list_rules(self):
        result = self.run_cli("--list-rules")
        assert result.returncode == 0
        for name in ("no-wall-clock", "sim-yield-only"):
            assert name in result.stdout

    def test_missing_path_is_a_usage_error(self):
        result = self.run_cli("does/not/exist")
        assert result.returncode == 2
        assert "no such path" in result.stderr

    def test_select_restricts_rules(self):
        result = self.run_cli(
            "--select", "no-mutable-default", os.path.join(FIXTURES, "bad_units.py")
        )
        assert result.returncode == 0, result.stdout + result.stderr
