"""Engine behaviour: pragmas, discovery, sorting, and the CLI."""

import os
import subprocess
import sys

import json

from repro.lint import lint_file, lint_paths, lint_source
from repro.lint.engine import iter_python_files
from repro.lint.rules import ALL_RULES

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))

BAD_CALL = "import time\n\n\ndef stamp():\n    return time.time()\n"


class TestPragmas:
    def test_named_disable_suppresses_that_rule(self):
        source = BAD_CALL.replace(
            "time.time()", "time.time()  # lint: disable=no-wall-clock"
        )
        assert lint_source(source) == []

    def test_named_disable_leaves_other_rules_alone(self):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def f(samples=[]):  # lint: disable=no-wall-clock\n"
            "    return time.time(), samples\n"
        )
        violations = lint_source(source)
        assert [v.rule for v in violations] == [
            "no-mutable-default",
            "no-wall-clock",
        ]

    def test_bare_disable_suppresses_everything_on_the_line(self):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def f(samples=[]):  # lint: disable\n"
            "    return samples\n"
        )
        assert lint_source(source) == []

    def test_skip_file_within_first_five_lines(self):
        source = "# lint: skip-file\n" + BAD_CALL
        assert lint_source(source) == []

    def test_skip_file_after_line_five_does_not_count(self):
        source = "\n\n\n\n\n# lint: skip-file\n" + BAD_CALL
        assert len(lint_source(source)) == 1

    def test_reason_trailer_is_not_part_of_the_rule_name(self):
        # The documented ``disable=rule -- reason`` form: the trailer
        # must not be swallowed into the rule list.
        source = BAD_CALL.replace(
            "time.time()",
            "time.time()  # lint: disable=no-wall-clock -- CLI boundary",
        )
        assert lint_source(source) == []

    def test_pragma_text_inside_a_string_does_not_suppress(self):
        source = (
            "import time\n"
            "\n"
            "STAMP = time.time(); NOTE = '# lint: disable=no-wall-clock'\n"
        )
        (violation,) = lint_source(source)
        assert violation.rule == "no-wall-clock"

    def test_skip_file_inside_a_docstring_does_not_skip(self):
        source = '"""# lint: skip-file"""\n' + BAD_CALL
        assert len(lint_source(source)) == 1


class TestUnusedSuppressions:
    def test_fixture_stale_pragma_is_reported_only_with_the_flag(self):
        path = os.path.join(FIXTURES, "bad_unused_pragma.py")
        assert lint_file(path) == []
        (violation,) = lint_file(path, warn_unused_suppressions=True)
        assert violation.rule == "unused-suppression"
        assert violation.line == 11

    def test_earned_pragma_with_reason_trailer_is_not_stale(self):
        path = os.path.join(FIXTURES, "bad_unused_pragma.py")
        violations = lint_file(path, warn_unused_suppressions=True)
        assert [v.line for v in violations] == [11]  # line 7 earned its keep

    def test_named_pragma_judged_only_when_its_rules_ran(self):
        source = "X = 42  # lint: disable=no-wall-clock\n"
        subset = [r for r in ALL_RULES if r.name == "no-mutable-default"]
        assert (
            lint_source(source, rules=subset, warn_unused_suppressions=True)
            == []
        )
        (violation,) = lint_source(source, warn_unused_suppressions=True)
        assert violation.rule == "unused-suppression"

    def test_bare_pragma_judged_only_on_the_full_rule_set(self):
        source = "X = 42  # lint: disable\n"
        subset = [r for r in ALL_RULES if r.name == "no-wall-clock"]
        assert (
            lint_source(source, rules=subset, warn_unused_suppressions=True)
            == []
        )
        (violation,) = lint_source(source, warn_unused_suppressions=True)
        assert "suppresses all rules" in violation.message

    def test_pragma_text_in_a_docstring_is_never_stale(self):
        # Tokenize-based extraction: docstring text is not a pragma, so
        # it neither suppresses nor shows up as an unused suppression.
        source = '"""Example: # lint: disable=no-wall-clock"""\nX = 42\n'
        assert lint_source(source, warn_unused_suppressions=True) == []


class TestEngineEdges:
    def test_syntax_error_is_reported_not_raised(self):
        (violation,) = lint_source("def broken(:\n", path="x.py")
        assert violation.rule == "syntax-error"
        assert violation.path == "x.py"

    def test_violation_format_is_grep_friendly(self):
        (violation,) = lint_source(BAD_CALL, path="pkg/mod.py")
        line = violation.format()
        assert line.startswith("pkg/mod.py:5:")
        assert "[no-wall-clock]" in line

    def test_results_are_sorted_and_deterministic(self):
        first = lint_paths([FIXTURES])
        second = lint_paths([FIXTURES])
        assert first == second
        keys = [(v.path, v.line, v.col, v.rule) for v in first]
        assert keys == sorted(keys)


class TestDiscovery:
    def test_walk_finds_fixture_files_sorted(self):
        names = [os.path.basename(p) for p in iter_python_files([FIXTURES])]
        assert names == sorted(names)
        assert "bad_wall_clock.py" in names
        assert "clean_example.py" in names

    def test_direct_file_path_passes_through(self):
        target = os.path.join(FIXTURES, "bad_units.py")
        assert list(iter_python_files([target])) == [target]

    def test_non_python_files_are_ignored(self):
        readme = os.path.join(REPO_ROOT, "README.md")
        assert list(iter_python_files([readme])) == []


class TestCli:
    def run_cli(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )

    def test_violations_exit_1_and_print_positions(self):
        result = self.run_cli(os.path.join(FIXTURES, "bad_units.py"))
        assert result.returncode == 1
        assert "units-discipline" in result.stdout

    def test_clean_file_exits_0(self):
        result = self.run_cli(os.path.join(FIXTURES, "clean_example.py"))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_list_rules(self):
        result = self.run_cli("--list-rules")
        assert result.returncode == 0
        for name in ("no-wall-clock", "sim-yield-only"):
            assert name in result.stdout

    def test_missing_path_is_a_usage_error(self):
        result = self.run_cli("does/not/exist")
        assert result.returncode == 2
        assert "no such path" in result.stderr

    def test_select_restricts_rules(self):
        result = self.run_cli(
            "--select", "no-mutable-default", os.path.join(FIXTURES, "bad_units.py")
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_json_output_is_machine_readable(self):
        result = self.run_cli("--json", os.path.join(FIXTURES, "bad_units.py"))
        assert result.returncode == 1
        records = json.loads(result.stdout)
        assert records and all(
            set(record) >= {"path", "line", "col", "rule", "message"}
            for record in records
        )
        assert any(r["rule"] == "units-discipline" for r in records)

    def test_json_clean_run_is_an_empty_array(self):
        result = self.run_cli(
            "--json", os.path.join(FIXTURES, "clean_example.py")
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert json.loads(result.stdout) == []

    def test_warn_unused_suppressions_flag(self):
        path = os.path.join(FIXTURES, "bad_unused_pragma.py")
        assert self.run_cli(path).returncode == 0
        result = self.run_cli("--warn-unused-suppressions", path)
        assert result.returncode == 1
        assert "unused-suppression" in result.stdout
