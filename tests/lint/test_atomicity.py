"""Atomicity analyzer: call graph, atomic-section proofs, RMW, listeners."""

import ast
import os

from repro.lint import lint_file, lint_source
from repro.lint.base import FileContext
from repro.lint.callgraph import ProjectIndex
from repro.lint.rules import ALL_RULES

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def lint_fixture(filename, rule_name):
    rules = [rule for rule in ALL_RULES if rule.name == rule_name]
    assert rules, f"unknown rule {rule_name}"
    return lint_file(os.path.join(FIXTURES, filename), rules=rules)


def lint_with(source, rule_name, path="model/component.py"):
    rules = [rule for rule in ALL_RULES if rule.name == rule_name]
    return lint_source(source, path=path, rules=rules)


def build_index(source, path="model/component.py"):
    return ProjectIndex.build(
        [FileContext(path=path, tree=ast.parse(source), source=source)]
    )


class TestCallGraph:
    SOURCE = (
        "def helper():\n"
        "    return 1\n"
        "\n"
        "def waiter(sim):\n"
        "    yield sim.timeout(1.0)\n"
        "\n"
        "def data_gen(items):\n"
        "    for item in items:\n"
        "        yield item, item\n"
        "\n"
        "class Node:\n"
        "    def fast(self):\n"
        "        return helper()\n"
        "\n"
        "    def slow(self, sim):\n"
        "        return self.fast() or waiter(sim)\n"
    )

    def test_yield_classification(self):
        index = build_index(self.SOURCE)
        waiter = index.find(None, "waiter")
        assert waiter.is_generator and waiter.yields
        data = index.find(None, "data_gen")
        assert data.is_generator and not data.yields
        helper = index.find(None, "helper")
        assert not helper.is_generator and not helper.yields

    def test_self_and_bare_resolution(self):
        index = build_index(self.SOURCE)
        slow = index.find("Node", "slow")
        kinds = {(c.kind, c.name) for c in slow.calls}
        assert ("self", "fast") in kinds
        assert ("bare", "waiter") in kinds
        fast_call = next(c for c in slow.calls if c.name == "fast")
        assert index.resolve(slow, fast_call) is index.find("Node", "fast")

    def test_yield_path_reports_the_chain(self):
        index = build_index(self.SOURCE)
        slow = index.find("Node", "slow")
        chain = index.yield_path(slow)
        assert chain is not None
        assert [info.qualname for info, _call in chain] == [
            "Node.slow",
            "waiter",
        ]
        assert index.yield_path(index.find("Node", "fast")) is None

    def test_ambiguous_attr_calls_are_not_followed(self):
        source = (
            "class A:\n"
            "    def hit(self, sim):\n"
            "        yield sim.timeout(1.0)\n"
            "\n"
            "class B:\n"
            "    def hit(self):\n"
            "        return 2\n"
            "\n"
            "def go(thing):\n"
            "    return thing.hit()\n"
        )
        index = build_index(source)
        go = index.find(None, "go")
        call = go.calls[0]
        assert call.kind == "attr"
        assert index.resolve(go, call) is None  # two 'hit' definitions

    def test_base_class_methods_resolve_same_module(self):
        source = (
            "class Base:\n"
            "    def step(self, sim):\n"
            "        yield sim.timeout(1.0)\n"
            "\n"
            "class Child(Base):\n"
            "    def run(self, sim):\n"
            "        return self.step(sim)\n"
        )
        index = build_index(source)
        child_run = index.find("Child", "run")
        assert index.yield_path(child_run) is not None


class TestAtomicSectionYields:
    def test_fixture_violations(self):
        violations = lint_fixture("bad_atomic_yield.py", "atomic-section-yields")
        assert [v.line for v in violations] == [16, 20, 27]
        direct, transitive, comment = violations
        assert "contains yield" in direct.message
        assert "Surgeon._confirm" in transitive.message
        assert "wait_for_ack" in transitive.message
        assert "comment_contract" in comment.message

    def test_clean_atomic_function_passes(self):
        violations = lint_fixture("bad_atomic_yield.py", "atomic-section-yields")
        assert all("clean" not in v.message for v in violations)

    def test_data_generator_calls_are_not_sim_time(self):
        source = (
            "def pairs():\n"
            "    yield 1, 2\n"
            "\n"
            "def surgery(state):  # sim: atomic\n"
            "    return dict(pairs())\n"
        )
        assert lint_with(source, "atomic-section-yields") == []

    def test_direct_delay_yields_are_sim_time(self):
        # The engine's ``yield <number>`` fast path suspends the process
        # just like ``yield sim.timeout(n)``; the analyzer must chase
        # atomic sections into functions whose only yield is numeric.
        violations = lint_fixture(
            "bad_ready_dispatch.py", "atomic-section-yields"
        )
        assert [v.line for v in violations] == [22, 25]
        via_constant, via_arith = violations
        assert "settle" in via_constant.message
        assert "pace" in via_arith.message
        assert all("flip_now" not in v.message for v in violations)

    def test_comment_contract_without_import(self):
        source = (
            "def waiter(sim):\n"
            "    yield sim.timeout(1.0)\n"
            "\n"
            "def surgery(sim):  # sim: atomic\n"
            "    return waiter(sim)\n"
        )
        (violation,) = lint_with(source, "atomic-section-yields")
        assert violation.line == 4

    def test_cycles_terminate(self):
        source = (
            "def a():  # sim: atomic\n"
            "    return b()\n"
            "\n"
            "def b():\n"
            "    return a()\n"
        )
        assert lint_with(source, "atomic-section-yields") == []


class TestCrossYieldRmw:
    def test_fixture_flags_only_the_stale_writeback(self):
        (violation,) = lint_fixture("bad_cross_yield_rmw.py", "cross-yield-rmw")
        assert violation.line == 8
        assert "self.ring" in violation.message

    def test_revalidated_and_augmented_are_clean(self):
        violations = lint_fixture("bad_cross_yield_rmw.py", "cross-yield-rmw")
        assert [v.line for v in violations] == [8]

    def test_write_before_any_yield_is_clean(self):
        source = (
            "class C:\n"
            "    def run(self, sim):\n"
            "        self.state = self.state + 1\n"
            "        yield sim.timeout(1.0)\n"
        )
        assert lint_with(source, "cross-yield-rmw") == []

    def test_reread_in_write_statement_counts(self):
        source = (
            "class C:\n"
            "    def run(self, sim):\n"
            "        snapshot = self.state\n"
            "        yield sim.timeout(1.0)\n"
            "        self.state = self.state + snapshot\n"
        )
        assert lint_with(source, "cross-yield-rmw") == []


class TestListenerMustNotYield:
    def test_fixture_violations(self):
        violations = lint_fixture("bad_listener_yield.py", "listener-must-not-yield")
        assert [v.line for v in violations] == [10, 11]
        assert "Watcher._watch" in violations[0].message
        assert "on_change" in violations[1].message

    def test_plain_function_listener_is_clean(self):
        violations = lint_fixture("bad_listener_yield.py", "listener-must-not-yield")
        assert all("_note" not in v.message for v in violations)


class TestRepoAnnotations:
    """The real cluster layer carries (and satisfies) the contract."""

    def test_cluster_atomic_sections_are_declared_and_proven(self):
        root = os.path.dirname(os.path.dirname(FIXTURES))
        src = os.path.join(os.path.dirname(root), "src")
        from repro.lint.engine import iter_python_files

        # Index the full src tree, matching the repo-wide gate: over a
        # narrower scope, ambiguous names like ``put`` resolve uniquely
        # and manufacture chains the real run never follows.
        contexts = []
        for path in iter_python_files([os.path.join(src, "repro")]):
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            contexts.append(
                FileContext(path=path, tree=ast.parse(text), source=text)
            )
        index = ProjectIndex.build(contexts)
        declared = {f.qualname for f in index.functions if f.atomic_declared}
        for expected in (
            "FailoverCoordinator._on_status_change",
            "FailoverCoordinator.reinstate",
            "Membership.promote",
            "Membership._transition",
            "RangeMigration.note_write",
            "RangeMigration._replan",
            "RangeMigration._finish_aborted",
            "RecoveryCoordinator._on_status_change",
            "RecoveryCoordinator._handoff",
            "VnodeMigration._on_status_change",
            "VnodeMigration._cutover",
            "RfpCluster.kill",
        ):
            assert expected in declared, f"missing atomic annotation: {expected}"
        for info in index.functions:
            if info.atomic_declared:
                assert not info.is_generator, info.qualname
                assert index.yield_path(info) is None, info.qualname
