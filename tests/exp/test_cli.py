"""CLI error paths: every failure is one stderr line and exit 2 — never
a traceback — and compare's exit code distinguishes clean from regressed."""

import json

import pytest

from repro.bench.harness import Scale
from repro.exp.artifact import build_payload, write_payload
from repro.exp.cli import main as exp_main

FAST = Scale.fast()


def toy_artifact(tmp_path, name, mops):
    from repro.exp.runner import ExperimentRunner
    from repro.exp.spec import ExperimentSpec

    spec = ExperimentSpec(
        experiment_id="toy", title="Toy", driver="fake"
    )
    runner = ExperimentRunner(
        drivers={"fake": lambda context: {"mops": mops}}
    )
    payload = build_payload("toy-suite", [runner.run(spec, FAST)], FAST)
    return write_payload(payload, str(tmp_path / name))


class TestExpCli:
    def test_unknown_suite_exits_2_with_message(self, capsys):
        assert exp_main(["run", "nope"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "unknown suite" in captured.err
        assert "Traceback" not in captured.err

    def test_list_names_every_suite(self, capsys):
        assert exp_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "core: fig3, fig4, tab1" in out
        assert "cluster:" in out

    def test_compare_identical_artifacts_exits_0(self, tmp_path, capsys):
        a = toy_artifact(tmp_path, "a.json", 5.0)
        b = toy_artifact(tmp_path, "b.json", 5.0)
        assert exp_main(["compare", a, b]) == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_compare_regression_exits_1(self, tmp_path, capsys):
        a = toy_artifact(tmp_path, "a.json", 5.0)
        b = toy_artifact(tmp_path, "b.json", 4.0)
        assert exp_main(["compare", a, b]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_missing_file_exits_2(self, tmp_path, capsys):
        a = toy_artifact(tmp_path, "a.json", 5.0)
        assert exp_main(["compare", a, str(tmp_path / "absent.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_compare_malformed_artifact_exits_2(self, tmp_path, capsys):
        a = toy_artifact(tmp_path, "a.json", 5.0)
        bad = tmp_path / "bad.json"
        bad.write_text("{truncated", encoding="utf-8")
        assert exp_main(["compare", a, str(bad)]) == 2
        err = capsys.readouterr().err
        assert "not valid JSON" in err
        assert "Traceback" not in err

    def test_compare_mismatched_schemas_exits_2(self, tmp_path, capsys):
        a = toy_artifact(tmp_path, "a.json", 5.0)
        speed_like = {
            "schema": "repro.bench.speed/v2",
            "provenance": {
                "git_sha": "x",
                "git_dirty": False,
                "scale": {
                    "window_us": 1.0,
                    "warmup_fraction": 0.25,
                    "records": 1,
                    "full": False,
                },
            },
            "repetitions": 1,
            "scenarios": [
                {
                    "name": "s",
                    "dispatched_fast": 1,
                    "dispatched_reference": 1,
                    "modeled_mops": 0.0,
                    "wall_s_fast": 0.1,
                    "wall_s_reference": 0.1,
                }
            ],
            "frozen_baseline": {},
        }
        path = tmp_path / "speed.json"
        path.write_text(json.dumps(speed_like), encoding="utf-8")
        assert exp_main(["compare", a, str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "repro.exp/v1" in err
        assert "Traceback" not in err


class TestBenchCli:
    def test_unknown_experiment_exits_2(self, capsys):
        from repro.bench.cli import main as bench_main

        assert bench_main(["no-such-figure"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "Traceback" not in err

    def test_malformed_spec_file_exits_2(self, tmp_path, capsys):
        from repro.bench.cli import main as bench_main

        bad = tmp_path / "spec.json"
        bad.write_text("{not json", encoding="utf-8")
        assert bench_main(["--spec", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "not valid JSON" in err
        assert "Traceback" not in err

    def test_invalid_spec_contents_exit_2(self, tmp_path, capsys):
        from repro.bench.cli import main as bench_main

        bad = tmp_path / "spec.json"
        bad.write_text(json.dumps({"systems": ["warpdrive"]}), encoding="utf-8")
        assert bench_main(["--spec", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "unknown systems" in err
        assert "Traceback" not in err

    def test_missing_spec_file_exits_2(self, tmp_path, capsys):
        from repro.bench.cli import main as bench_main

        assert bench_main(["--spec", str(tmp_path / "absent.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
