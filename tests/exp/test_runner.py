"""Runner lifecycle: observer hooks, context discipline, result lookup."""

import pytest

from repro.bench.harness import Scale
from repro.errors import ExpError
from repro.exp.observers import (
    InvariantObserver,
    MetricsObserver,
    ProgressObserver,
    RunObserver,
)
from repro.exp.runner import ExperimentRunner
from repro.exp.spec import ExperimentSpec

FAST = Scale.fast()


def toy_spec(**overrides):
    kwargs = dict(experiment_id="toy", title="Toy", driver="fake")
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class RecordingObserver(RunObserver):
    def __init__(self):
        self.events = []

    def run_started(self, spec, scale, conditions):
        self.events.append(("run_started", len(conditions)))

    def condition_started(self, context, index, total):
        self.events.append(("condition_started", index))

    def simulator_created(self, context, sim):
        self.events.append(("simulator_created", context.condition.label))

    def condition_finished(self, context, outcome, index, total):
        self.events.append(("condition_finished", outcome.condition.label))

    def run_finished(self, result):
        self.events.append(("run_finished", len(result.outcomes)))


def fake_driver(context):
    context.make_simulator()
    return {"mops": float(context.condition.topology.server_threads)}


class TestLifecycle:
    def test_observer_sees_full_event_stream_in_order(self):
        observer = RecordingObserver()
        runner = ExperimentRunner(
            observers=[observer], drivers={"fake": fake_driver}
        )
        spec = toy_spec(axes={"server_threads": (1, 2)})
        result = runner.run(spec, FAST)
        assert observer.events == [
            ("run_started", 2),
            ("condition_started", 0),
            ("simulator_created", "server_threads=1"),
            ("condition_finished", "server_threads=1"),
            ("condition_started", 1),
            ("simulator_created", "server_threads=2"),
            ("condition_finished", "server_threads=2"),
            ("run_finished", 2),
        ]
        assert [o.metrics["mops"] for o in result.outcomes] == [1.0, 2.0]
        assert all(o.wall_s >= 0 for o in result.outcomes)

    def test_unknown_driver_raises(self):
        runner = ExperimentRunner(drivers={"fake": fake_driver})
        with pytest.raises(ExpError, match="unknown driver"):
            runner.run(toy_spec(driver="nope"), FAST)

    def test_each_condition_gets_exactly_one_simulator(self):
        def greedy(context):
            context.make_simulator()
            context.make_simulator()

        runner = ExperimentRunner(drivers={"fake": greedy})
        with pytest.raises(ExpError, match="exactly one fresh simulator"):
            runner.run(toy_spec(), FAST)

    def test_fresh_simulator_per_condition(self):
        seen = []

        def capture(context):
            seen.append(context.make_simulator())
            return {"ok": 1}

        runner = ExperimentRunner(drivers={"fake": capture})
        runner.run(toy_spec(axes={"server_threads": (1, 2, 4)}), FAST)
        assert len({id(sim) for sim in seen}) == 3

    def test_duplicate_tracer_name_rejected(self):
        from repro.sim.trace import Tracer

        def publisher(context):
            sim = context.make_simulator()
            context.publish_tracer("t", Tracer(sim, categories=["cluster"]), "cluster")
            context.publish_tracer("t", Tracer(sim, categories=["cluster"]), "cluster")

        runner = ExperimentRunner(drivers={"fake": publisher})
        with pytest.raises(ExpError, match="published twice"):
            runner.run(toy_spec(), FAST)


class TestObservers:
    def test_metrics_observer_captures_stream(self):
        metrics = MetricsObserver()
        runner = ExperimentRunner(
            observers=[metrics], drivers={"fake": fake_driver}
        )
        runner.run(toy_spec(axes={"server_threads": (1, 2)}), FAST)
        assert metrics.captured == [
            ("server_threads=1", {"mops": 1.0}),
            ("server_threads=2", {"mops": 2.0}),
        ]

    def test_invariant_observer_attaches_checkers_to_published_tracers(self):
        from repro.sim.trace import Tracer

        kinds = {}

        def publisher(context):
            sim = context.make_simulator()
            context.publish_tracer(
                "cluster", Tracer(sim, categories=["cluster"]), "cluster"
            )
            context.publish_tracer("shard0", Tracer(sim, capacity=1), "shard")
            kinds.update(context.checkers)
            return {"ok": 1}

        runner = ExperimentRunner(
            observers=[InvariantObserver()], drivers={"fake": publisher}
        )
        runner.run(toy_spec(), FAST)  # assert_clean on idle checkers passes
        assert set(kinds) == {"cluster", "shard0"}

    def test_progress_observer_writes_one_line_per_condition(self):
        import io

        stream = io.StringIO()
        runner = ExperimentRunner(
            observers=[ProgressObserver(stream)], drivers={"fake": fake_driver}
        )
        runner.run(toy_spec(axes={"server_threads": (1, 2)}), FAST)
        lines = stream.getvalue().strip().splitlines()
        assert lines[0].startswith("[toy] 2 condition")
        assert "[1/2] server_threads=1 mops=1.0" in lines[1]


class TestRunResult:
    def test_outcome_lookup_and_axis_filter(self):
        runner = ExperimentRunner(drivers={"fake": fake_driver})
        result = runner.run(
            toy_spec(axes={"server_threads": (1, 2), "value_bytes": (32, 64)}),
            FAST,
        )
        assert (
            result.outcome("server_threads=2,value_bytes=64").metrics["mops"]
            == 2.0
        )
        assert len(result.by_axis(server_threads=2)) == 2
        assert len(result.by_axis(server_threads=2, value_bytes=64)) == 1
        with pytest.raises(ExpError, match="no condition labelled"):
            result.outcome("nope")
