"""Artifact build, schema validation, and the deterministic/unpinned split."""

import json

import pytest

from repro.bench.harness import Scale
from repro.errors import ExpError
from repro.exp.artifact import (
    SCHEMA_VERSION,
    build_payload,
    deterministic_view,
    load_payload,
    repo_root_artifacts,
    validate_artifact,
    validate_bench_payload,
    write_payload,
)
from repro.exp.runner import ExperimentRunner
from repro.exp.spec import ExperimentSpec

FAST = Scale.fast()


def toy_result():
    spec = ExperimentSpec(
        experiment_id="toy",
        title="Toy",
        driver="fake",
        axes={"server_threads": (1, 2)},
        paper_expectation="flat",
    )

    def driver(context):
        context.make_simulator()
        return {"mops": context.condition.topology.server_threads / 3.0}

    runner = ExperimentRunner(drivers={"fake": driver})
    return runner.run(spec, FAST)


class TestBuildPayload:
    def test_payload_validates_and_carries_provenance(self):
        payload = build_payload("toy-suite", [toy_result()], FAST)
        validate_artifact(payload)
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["suite"] == "toy-suite"
        assert payload["provenance"]["git_sha"]
        assert payload["provenance"]["scale"]["records"] == FAST.records
        (experiment,) = payload["experiments"]
        assert experiment["experiment_id"] == "toy"
        labels = [c["label"] for c in experiment["conditions"]]
        assert labels == ["server_threads=1", "server_threads=2"]

    def test_floats_are_rounded_for_stable_diffs(self):
        payload = build_payload("toy-suite", [toy_result()], FAST)
        mops = payload["experiments"][0]["conditions"][0]["metrics"]["mops"]
        assert mops == round(1 / 3.0, 6)

    def test_wall_time_is_unpinned(self):
        payload = build_payload("toy-suite", [toy_result()], FAST)
        condition = payload["experiments"][0]["conditions"][0]
        assert "wall_s" in condition["unpinned"]
        assert "wall_s" not in condition["metrics"]


class TestDeterministicView:
    def test_strips_every_unpinned_subtree(self):
        payload = build_payload("toy-suite", [toy_result()], FAST)
        view = deterministic_view(payload)
        for condition in view["experiments"][0]["conditions"]:
            assert "unpinned" not in condition
            # Everything else survives.
            assert condition["metrics"]

    def test_two_builds_agree_byte_for_byte(self):
        first = build_payload("toy-suite", [toy_result()], FAST)
        second = build_payload("toy-suite", [toy_result()], FAST)
        assert json.dumps(
            deterministic_view(first), sort_keys=True
        ) == json.dumps(deterministic_view(second), sort_keys=True)


class TestValidation:
    def payload(self):
        return build_payload("toy-suite", [toy_result()], FAST)

    def test_wrong_schema_version_rejected(self):
        payload = self.payload()
        payload["schema"] = "repro.exp/v0"
        with pytest.raises(ExpError, match="schema"):
            validate_artifact(payload)

    def test_missing_field_names_the_path(self):
        payload = self.payload()
        del payload["experiments"][0]["conditions"][0]["metrics"]
        with pytest.raises(ExpError, match=r"conditions\[0\].*metrics"):
            validate_artifact(payload)

    def test_duplicate_experiment_ids_rejected(self):
        payload = self.payload()
        payload["experiments"].append(payload["experiments"][0])
        with pytest.raises(ExpError, match="duplicate experiment_id"):
            validate_artifact(payload)

    def test_non_scalar_metric_rejected(self):
        payload = self.payload()
        payload["experiments"][0]["conditions"][0]["metrics"]["rows"] = [1, 2]
        with pytest.raises(ExpError, match="scalars"):
            validate_artifact(payload)

    def test_bool_does_not_satisfy_int_fields(self):
        payload = self.payload()
        payload["provenance"]["scale"]["records"] = True
        with pytest.raises(ExpError, match="records"):
            validate_artifact(payload)

    def test_unknown_schema_family_rejected(self):
        with pytest.raises(ExpError, match="unknown artifact schema family"):
            validate_bench_payload({"schema": "repro.mystery/v9"})

    def test_schema_field_required(self):
        with pytest.raises(ExpError, match="no 'schema'"):
            validate_bench_payload({"suite": "x"})


class TestLoadAndWrite:
    def test_round_trip(self, tmp_path):
        payload = build_payload("toy-suite", [toy_result()], FAST)
        path = write_payload(payload, str(tmp_path / "BENCH_toy.json"))
        assert load_payload(path) == payload

    def test_malformed_json_is_an_exp_error(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ExpError, match="not valid JSON"):
            load_payload(str(path))

    def test_missing_file_is_an_exp_error(self, tmp_path):
        with pytest.raises(ExpError, match="cannot read"):
            load_payload(str(tmp_path / "BENCH_absent.json"))

    def test_write_refuses_invalid_payload(self, tmp_path):
        with pytest.raises(ExpError):
            write_payload({"schema": SCHEMA_VERSION}, str(tmp_path / "x.json"))


class TestRepoArtifacts:
    def test_checked_in_artifacts_exist_and_validate(self):
        paths = repo_root_artifacts()
        names = {path.rsplit("/", 1)[-1] for path in paths}
        assert {
            "BENCH_core.json",
            "BENCH_cluster.json",
            "BENCH_sim_speed.json",
        } <= names
        for path in paths:
            load_payload(path)
