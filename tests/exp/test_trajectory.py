"""Trajectory comparison: directions, tolerances, commensurability."""

import pytest

from repro.errors import ExpError
from repro.exp.artifact import SCHEMA_VERSION
from repro.exp.trajectory import (
    compare_payloads,
    format_comparison,
    metric_direction,
)


def payload(metrics, suite="core", sha="aaa", scale_records=8192):
    return {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "provenance": {
            "git_sha": sha,
            "git_dirty": False,
            "scale": {
                "window_us": 2500.0,
                "warmup_fraction": 0.25,
                "records": scale_records,
                "full": False,
            },
        },
        "experiments": [
            {
                "experiment_id": "toy",
                "title": "Toy",
                "driver": "fake",
                "paper_expectation": "",
                "conditions": [
                    {
                        "label": "base",
                        "condition": {},
                        "metrics": dict(metrics),
                        "unpinned": {"wall_s": 1.0},
                    }
                ],
            }
        ],
    }


class TestDirections:
    def test_metric_direction_by_name(self):
        assert metric_direction("mops") == 1
        assert metric_direction("post_mops") == 1
        assert metric_direction("lost_acked_writes") == -1
        assert metric_direction("dispatched") == 0


class TestCompare:
    def test_identical_payloads_report_clean(self):
        comparison = compare_payloads(
            payload({"mops": 5.0}), payload({"mops": 5.0}, sha="bbb")
        )
        assert comparison.identical
        assert comparison.regressions == []
        assert "0 regressions" in format_comparison(comparison)

    def test_wall_time_differences_are_invisible(self):
        before = payload({"mops": 5.0})
        after = payload({"mops": 5.0})
        after["experiments"][0]["conditions"][0]["unpinned"]["wall_s"] = 99.0
        assert compare_payloads(before, after).identical

    def test_throughput_drop_beyond_tolerance_is_a_regression(self):
        comparison = compare_payloads(
            payload({"mops": 5.0}), payload({"mops": 4.0})
        )
        (delta,) = comparison.regressions
        assert delta.metric == "mops"
        assert "REGRESSION" in delta.describe()

    def test_small_drop_within_tolerance_is_not_flagged(self):
        comparison = compare_payloads(
            payload({"mops": 5.0}), payload({"mops": 4.999})
        )
        assert comparison.changed and not comparison.regressions

    def test_throughput_gain_is_not_a_regression(self):
        comparison = compare_payloads(
            payload({"mops": 5.0}), payload({"mops": 6.0})
        )
        assert comparison.changed and not comparison.regressions

    def test_loss_increase_is_a_regression(self):
        comparison = compare_payloads(
            payload({"lost_acked_writes": 0}),
            payload({"lost_acked_writes": 1}),
        )
        assert comparison.regressions

    def test_neutral_metric_change_reported_not_flagged(self):
        comparison = compare_payloads(
            payload({"dispatched": 100}), payload({"dispatched": 200})
        )
        assert comparison.changed and not comparison.regressions
        # Only visible with verbose formatting.
        assert "dispatched" not in format_comparison(comparison)
        assert "dispatched" in format_comparison(comparison, verbose=True)

    def test_directional_metric_vanishing_is_a_regression(self):
        comparison = compare_payloads(
            payload({"mops": 5.0}), payload({"other": 1.0})
        )
        flagged = {delta.metric for delta in comparison.regressions}
        assert "mops" in flagged

    def test_custom_tolerance(self):
        lenient = compare_payloads(
            payload({"mops": 5.0}), payload({"mops": 4.0}), rel_tolerance=0.5
        )
        assert not lenient.regressions


class TestCommensurability:
    def test_schema_mismatch_refused(self):
        bad = payload({"mops": 5.0})
        bad["schema"] = "repro.bench.speed/v2"
        with pytest.raises(ExpError, match="schema"):
            compare_payloads(bad, payload({"mops": 5.0}))

    def test_suite_mismatch_refused(self):
        with pytest.raises(ExpError, match="different suites"):
            compare_payloads(
                payload({"mops": 5.0}, suite="core"),
                payload({"mops": 5.0}, suite="cluster"),
            )

    def test_scale_mismatch_noted_not_refused(self):
        comparison = compare_payloads(
            payload({"mops": 5.0}),
            payload({"mops": 5.0}, scale_records=32768),
        )
        assert not comparison.scales_match
        assert "scales differ" in format_comparison(comparison)

    def test_condition_set_drift_reported(self):
        extra = payload({"mops": 5.0})
        extra["experiments"][0]["conditions"].append(
            {
                "label": "new",
                "condition": {},
                "metrics": {"mops": 1.0},
                "unpinned": {},
            }
        )
        comparison = compare_payloads(payload({"mops": 5.0}), extra)
        assert comparison.only_in_candidate == [("toy", "new")]
