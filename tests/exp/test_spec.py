"""Spec routing, matrix expansion, sweeps, labels, and phase layout."""

import pytest

from repro.bench.harness import Scale
from repro.errors import ExpError
from repro.exp.spec import (
    ExperimentSpec,
    FaultPoint,
    Phase,
    Sweep,
    Workload,
    phases_of,
)

FAST = Scale.fast()
FULL = Scale.full_scale()


def toy(**overrides):
    kwargs = dict(experiment_id="toy", title="Toy", driver="fake")
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class TestRouting:
    def test_flat_settings_route_to_typed_dimensions(self):
        spec = toy(
            base={
                "kind": "ledger",
                "value_bytes": 64,
                "shards": 3,
                "client_threads": 24,
                "paradigm": "RFP",
                "faults": (FaultPoint(0.5, "kill", "shard1"),),
                "audit": "failover",
            }
        )
        (condition,) = spec.expand(FAST)
        assert condition.workload.kind == "ledger"
        assert condition.workload.value_bytes == 64
        assert condition.topology.shards == 3
        assert condition.topology.client_threads == 24
        assert condition.paradigm == "RFP"
        assert condition.faults[0].shard == "shard1"
        # Unrecognized keys land in driver-facing settings, nothing else.
        assert condition.settings == {"audit": "failover"}

    def test_fault_fraction_must_be_inside_window(self):
        spec = toy(base={"faults": (FaultPoint(1.5, "kill", "shard0"),)})
        with pytest.raises(ExpError, match="outside"):
            spec.expand(FAST)

    def test_non_faultpoint_fault_rejected(self):
        spec = toy(base={"faults": ({"at": 0.5},)})
        with pytest.raises(ExpError, match="FaultPoint"):
            spec.expand(FAST)

    def test_unknown_axis_name_fails_at_declaration(self):
        with pytest.raises(ExpError, match="not a workload"):
            toy(axes={"warp_factor": (1, 2)})


class TestExpansion:
    def test_cross_product_and_labels(self):
        spec = toy(
            axes={"server_threads": (1, 2), "value_bytes": (32, 1024)}
        )
        conditions = spec.expand(FAST)
        assert [c.label for c in conditions] == [
            "server_threads=1,value_bytes=32",
            "server_threads=1,value_bytes=1024",
            "server_threads=2,value_bytes=32",
            "server_threads=2,value_bytes=1024",
        ]
        assert conditions[3].topology.server_threads == 2
        assert conditions[3].workload.value_bytes == 1024
        assert conditions[3].axis == {
            "server_threads": 2,
            "value_bytes": 1024,
        }

    def test_no_axes_yields_single_base_condition(self):
        (condition,) = toy().expand(FAST)
        assert condition.label == "base"
        assert condition.axis == {}

    def test_sweep_resolves_by_scale(self):
        spec = toy(axes={"server_threads": Sweep((1, 2), (1, 2, 3, 4))})
        assert len(spec.expand(FAST)) == 2
        assert len(spec.expand(FULL)) == 4

    def test_extras_append_off_grid_conditions(self):
        spec = toy(
            axes={"server_threads": (1, 2)},
            extras=({"paradigm": "inbound", "client_threads": 28},),
        )
        conditions = spec.expand(FAST)
        assert conditions[-1].label == "paradigm=inbound,client_threads=28"
        assert conditions[-1].paradigm == "inbound"

    def test_duplicate_labels_rejected(self):
        # No axes plus an extra that adds no axis keys: two "base" labels.
        spec = toy(extras=({"audit": "x"},))
        with pytest.raises(ExpError, match="duplicate condition label"):
            spec.expand(FAST)

    def test_empty_axis_rejected(self):
        with pytest.raises(ExpError, match="empty"):
            toy(axes={"server_threads": ()}).expand(FAST)


class TestWorkloadRecords:
    def test_default_follows_scale(self):
        assert Workload().resolve_records(FAST) == FAST.records

    def test_explicit_records_win(self):
        assert Workload(records=7).resolve_records(FAST) == 7

    def test_cap_bounds_the_scale_default(self):
        assert Workload(records_cap=240).resolve_records(FAST) == 240
        assert Workload(records=8, records_cap=240).resolve_records(FAST) == 8


class TestPhases:
    def test_default_phase_is_post_warmup_window(self):
        (condition,) = toy().expand(FAST)
        (phase,) = phases_of(condition)
        assert phase == Phase("run", FAST.warmup_fraction, 1.0)

    def test_declared_phases_returned_in_order(self):
        spec = toy(
            base={
                "phases": (
                    Phase("pre", 0.25, 0.5),
                    Phase("post", 0.5, 1.0),
                )
            }
        )
        (condition,) = spec.expand(FAST)
        assert [p.name for p in phases_of(condition)] == ["pre", "post"]

    def test_overlapping_phases_rejected(self):
        spec = toy(
            base={
                "phases": (
                    Phase("pre", 0.25, 0.6),
                    Phase("post", 0.5, 1.0),
                )
            }
        )
        (condition,) = spec.expand(FAST)
        with pytest.raises(ExpError, match="overlap"):
            phases_of(condition)

    def test_inverted_phase_bounds_rejected(self):
        spec = toy(base={"phases": (Phase("bad", 0.8, 0.2),)})
        (condition,) = spec.expand(FAST)
        with pytest.raises(ExpError, match="invalid"):
            phases_of(condition)


class TestDescribe:
    def test_describe_is_json_friendly_and_resolves_records(self):
        spec = toy(base={"records_cap": 240, "faults": (FaultPoint(0.5, "kill", "s"),)})
        (condition,) = spec.expand(FAST)
        description = condition.describe()
        assert description["workload"]["records"] == 240
        assert description["faults"] == [
            {"at_frac": 0.5, "action": "kill", "shard": "s"}
        ]
