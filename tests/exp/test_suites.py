"""Suite registry closure and real-driver determinism."""

import json

import pytest

from repro.bench.harness import Scale
from repro.errors import ExpError
from repro.exp.artifact import build_payload, deterministic_view
from repro.exp.library import SPECS
from repro.exp.runner import ExperimentRunner, default_observers
from repro.exp.suites import (
    SUITES,
    check_exp_registry,
    run_suite,
    suite_artifact_path,
)


class TestRegistry:
    def test_registry_is_closed_both_ways(self):
        assert check_exp_registry() == []

    def test_every_suite_member_is_declared(self):
        for members in SUITES.values():
            for spec_id in members:
                assert spec_id in SPECS

    def test_unknown_suite_raises(self):
        with pytest.raises(ExpError, match="unknown suite"):
            run_suite("nope", write=False)

    def test_artifact_path_naming(self, tmp_path):
        assert suite_artifact_path("core").endswith("BENCH_core.json")
        assert suite_artifact_path("core", str(tmp_path)) == str(
            tmp_path / "BENCH_core.json"
        )


class TestRealDriverDeterminism:
    def test_tab1_spec_is_byte_deterministic(self):
        # The cheapest real-driver spec run twice end to end: the
        # deterministic views of the two payloads must agree byte for
        # byte (wall times live under 'unpinned' and are stripped).
        spec = SPECS["tab1"]
        scale = Scale.fast()
        views = []
        for _ in range(2):
            runner = ExperimentRunner(observers=default_observers())
            payload = build_payload("t", [runner.run(spec, scale)], scale)
            views.append(
                json.dumps(deterministic_view(payload), sort_keys=True)
            )
        assert views[0] == views[1]
