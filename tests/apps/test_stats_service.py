"""Tests for the statistics service (the porting-cost demo)."""

import pytest

from repro.apps import StatsService
from repro.errors import ProtocolError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator, ThroughputMeter, Tracer


def make_service(transport="rfp", threads=4):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    service = StatsService(sim, cluster, threads=threads, transport=transport)
    return sim, cluster, service


@pytest.mark.parametrize("transport", ["rfp", "serverreply"])
class TestStatsSemantics:
    def test_record_and_query(self, transport):
        sim, cluster, service = make_service(transport)
        client = service.connect(cluster.client_machines[0])

        def body(sim):
            for value in (1.0, 2.5, -3.0):
                yield from client.record(b"latency", value)
            return (yield from client.query(b"latency"))

        proc = sim.process(body(sim))
        sim.run()
        snapshot = proc.value
        assert snapshot.count == 3
        assert snapshot.total == pytest.approx(0.5)
        assert snapshot.minimum == -3.0
        assert snapshot.maximum == 2.5
        assert snapshot.mean == pytest.approx(0.5 / 3)

    def test_unknown_metric_is_empty(self, transport):
        sim, cluster, service = make_service(transport)
        client = service.connect(cluster.client_machines[0])

        def body(sim):
            return (yield from client.query(b"nothing"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value.count == 0
        assert proc.value.mean == 0.0

    def test_reset_clears_metric(self, transport):
        sim, cluster, service = make_service(transport)
        client = service.connect(cluster.client_machines[0])

        def body(sim):
            yield from client.record(b"m", 9.0)
            yield from client.reset(b"m")
            return (yield from client.query(b"m"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value.count == 0

    def test_metrics_shared_across_clients(self, transport):
        sim, cluster, service = make_service(transport)
        writer = service.connect(cluster.client_machines[0])
        reader = service.connect(cluster.client_machines[1])
        result = {}

        def write(sim):
            for i in range(10):
                yield from writer.record(b"shared", float(i))

        def read(sim):
            yield sim.timeout(200.0)
            result["snapshot"] = yield from reader.query(b"shared")

        sim.process(write(sim))
        sim.process(read(sim))
        sim.run()
        assert result["snapshot"].count == 10
        assert result["snapshot"].total == pytest.approx(45.0)

    def test_distinct_metrics_independent(self, transport):
        sim, cluster, service = make_service(transport)
        client = service.connect(cluster.client_machines[0])

        def body(sim):
            yield from client.record(b"a", 1.0)
            yield from client.record(b"b", 100.0)
            snap_a = yield from client.query(b"a")
            snap_b = yield from client.query(b"b")
            return snap_a, snap_b

        proc = sim.process(body(sim))
        sim.run()
        snap_a, snap_b = proc.value
        assert snap_a.total == 1.0
        assert snap_b.total == 100.0


@pytest.mark.parametrize("transport", ["rfp", "serverreply"])
class TestTracing:
    def run_traced(self, transport, service_categories=None, client_categories=None):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        service_tracer = (
            Tracer(sim, categories=service_categories)
            if service_categories is not False
            else None
        )
        client_tracer = (
            Tracer(sim, categories=client_categories) if client_categories else None
        )
        service = StatsService(sim, cluster, transport=transport, tracer=service_tracer)
        client = service.connect(cluster.client_machines[0], tracer=client_tracer)

        def body(sim):
            for value in (1.0, 2.0):
                yield from client.record(b"m", value)
            yield from client.query(b"m")

        sim.process(body(sim))
        sim.run()
        return service_tracer, client_tracer

    def test_service_tracer_sees_both_sides(self, transport):
        """One tracer handed to the service covers the server AND (by
        default) every stub the service hands out."""
        tracer, _ = self.run_traced(transport)
        categories = {event.category for event in tracer.events()}
        assert "rfp.server" in categories
        assert "rfp.client" in categories

    def test_client_tracer_overrides_service_default(self, transport):
        service_tracer, client_tracer = self.run_traced(
            transport,
            service_categories=["rfp.server"],
            client_categories=["rfp.client"],
        )
        assert service_tracer.events()
        assert all(e.category == "rfp.server" for e in service_tracer.events())
        assert client_tracer.events()
        assert all(e.category == "rfp.client" for e in client_tracer.events())

    def test_untraced_service_stays_silent(self, transport):
        self.run_traced(transport, service_categories=False)


class TestPortingClaim:
    def measure(self, transport, window=2500.0):
        sim, cluster, service = make_service(transport, threads=4)
        meter = ThroughputMeter(window_start=window * 0.25, window_end=window)
        metrics = [f"metric-{i}".encode() for i in range(64)]

        def loop(sim, client, offset):
            index = offset
            while True:
                yield from client.record(metrics[index % 64], float(index))
                meter.record(sim.now)
                index += 1

        for i in range(35):
            client = service.connect(cluster.client_machines[i % 7])
            sim.process(loop(sim, client, i * 17))
        sim.run(until=window)
        return meter.mops(elapsed=window * 0.75)

    def test_same_app_faster_over_rfp(self):
        """The paper's pitch in one assertion: identical application
        code, ~2.5x more throughput by swapping the transport."""
        rfp = self.measure("rfp")
        reply = self.measure("serverreply")
        assert rfp > 2.0 * reply
        assert reply == pytest.approx(2.1, rel=0.2)

    def test_invalid_transport_rejected(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        with pytest.raises(ProtocolError):
            StatsService(sim, cluster, transport="tcp")

    def test_metric_name_validation(self):
        sim, cluster, service = make_service()
        client = service.connect(cluster.client_machines[0])
        with pytest.raises(ProtocolError):
            next(client.record(b"", 1.0))
        with pytest.raises(ProtocolError):
            next(client.record(b"x" * 300, 1.0))
