"""Planted-violation tests for :class:`ClusterInvariantChecker`.

Each test emits a hand-crafted ``cluster`` trace that breaks exactly one
rule and asserts the checker names it; the clean sequence (the one the
real router produces) must pass untouched.
"""

import pytest

from repro.lint import ClusterInvariantChecker, InvariantViolation
from repro.sim import Simulator, Tracer


def make_rig(halt_on_violation=False):
    sim = Simulator()
    tracer = Tracer(sim, categories=["cluster"])
    checker = ClusterInvariantChecker(halt_on_violation=halt_on_violation)
    checker.attach(tracer)
    return tracer, checker


def emit(tracer, label, **data):
    tracer.record("cluster", label, **data)


class TestCleanSequence:
    def test_healthy_lifecycle_passes(self):
        tracer, checker = make_rig()
        emit(tracer, "route", shard="s0", op="get", client="c0")
        emit(tracer, "suspect", shard="s0", reason="op timed out")
        emit(tracer, "recovered", shard="s0", reason="beat")
        emit(tracer, "route", shard="s0", op="get", client="c0")
        checker.assert_clean()
        assert checker.ok
        assert checker.events_checked == 4
        assert checker.routes_per_shard == {"s0": 2}

    def test_full_failover_sequence_passes(self):
        tracer, checker = make_rig()
        emit(tracer, "route", shard="s1", op="put", client="c0")
        emit(tracer, "suspect", shard="s1", reason="op timed out")
        emit(tracer, "dead", shard="s1", reason="lease expired")
        emit(tracer, "failover", shard="s1", successors="s0,s2")
        emit(tracer, "rebalance", removed="s1", survivors="s0,s2")
        emit(tracer, "route", shard="s0", op="put", client="c0")
        checker.assert_clean()

    def test_unknown_labels_ignored(self):
        tracer, checker = make_rig()
        emit(tracer, "shard_killed", shard="s1")
        emit(tracer, "route_timeout", shard="s1")
        assert checker.events_checked == 0

    def test_full_rejoin_sequence_passes(self):
        tracer, checker = make_rig()
        emit(tracer, "suspect", shard="s1")
        emit(tracer, "dead", shard="s1")
        emit(tracer, "failover", shard="s1", successors="s0,s2")
        emit(tracer, "rebalance", removed="s1", survivors="s0,s2")
        emit(tracer, "rejoin", shard="s1", reason="repaired")
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=8, target=16)
        emit(tracer, "transfer", shard="s1", donor="s2", watermark=16, target=16)
        emit(tracer, "handoff", shard="s1", ring="s0,s1,s2", watermark=16, target=16)
        emit(tracer, "route", shard="s1", op="get", client="c0")
        checker.assert_clean()

    def test_target_may_grow_between_batches(self):
        """Catch-up writes extend the plan mid-transfer; a growing
        target is legal as long as the watermark tracks it."""
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=8, target=16)
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=18, target=18)
        emit(tracer, "handoff", shard="s1", ring="s0,s1", watermark=18, target=18)
        checker.assert_clean()

    def test_refailover_after_rejoin_cycle_passes(self):
        """A rejoined shard may crash and fail over again: the handoff
        resets the once-per-incarnation failover bookkeeping."""
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "failover", shard="s1", successors="s0,s2")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "handoff", shard="s1", ring="s0,s1,s2", watermark=0, target=0)
        emit(tracer, "route", shard="s1", op="get", client="c0")
        emit(tracer, "dead", shard="s1", reason="second crash")
        emit(tracer, "failover", shard="s1", successors="s0,s2")
        checker.assert_clean()

    def test_abort_after_redeclared_death_passes(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=4, target=16)
        emit(tracer, "dead", shard="s1", reason="re-halted mid-transfer")
        emit(tracer, "transfer_abort", shard="s1", watermark=4, target=16)
        checker.assert_clean()

    def test_suspect_donor_is_legal(self):
        """A single op timeout makes a donor transiently SUSPECT while
        its transfer stream is still perfectly legal; the checker must
        not flag it (it heals on the next beat)."""
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "suspect", shard="s0", reason="op timed out under load")
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=8, target=16)
        emit(tracer, "recovered", shard="s0", reason="heartbeat resumed")
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=16, target=16)
        emit(tracer, "handoff", shard="s1", ring="s0,s1", watermark=16, target=16)
        checker.assert_clean()

    def test_replan_rebases_watermark_and_target(self):
        """A ring change mid-transfer re-plans the stream: the re-based
        (watermark, target) pair — even a shrinking target — is the new
        monotonicity baseline."""
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=8, target=16)
        emit(tracer, "dead", shard="s2", reason="second failure mid-transfer")
        emit(tracer, "failover", shard="s2", successors="s0")
        emit(tracer, "rebalance", removed="s2", survivors="s0")
        emit(
            tracer, "transfer_replan", shard="s1", ring="s0,s1", watermark=5, target=10
        )
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=10, target=10)
        emit(tracer, "handoff", shard="s1", ring="s0,s1", watermark=10, target=10)
        checker.assert_clean()


class TestPlantedViolations:
    def test_route_to_suspect_shard_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "suspect", shard="s0", reason="op timed out")
        emit(tracer, "route", shard="s0", op="get", client="c0")
        assert not checker.ok
        assert "SUSPECT" in checker.violations[0]

    def test_route_after_failover_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "suspect", shard="s1")
        emit(tracer, "dead", shard="s1")
        emit(tracer, "failover", shard="s1", successors="s0")
        emit(tracer, "route", shard="s1", op="get", client="c0")
        assert any("after its failover" in v for v in checker.violations)

    def test_failover_without_death_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "failover", shard="s2", successors="s0,s1")
        assert any("never declared dead" in v for v in checker.violations)

    def test_double_failover_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "failover", shard="s1", successors="s0")
        emit(tracer, "failover", shard="s1", successors="s0")
        assert any("second failover" in v for v in checker.violations)

    def test_dead_shard_in_successors_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "failover", shard="s1", successors="s0,s1")
        assert any("include the dead shard" in v for v in checker.violations)

    def test_recovery_from_dead_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "suspect", shard="s0")
        emit(tracer, "dead", shard="s0")
        emit(tracer, "recovered", shard="s0")
        assert any("DEAD is sticky" in v for v in checker.violations)

    def test_double_death_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s0")
        emit(tracer, "dead", shard="s0")
        assert any("dead twice" in v for v in checker.violations)

    def test_rebalance_without_failover_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rebalance", removed="s1", survivors="s0")
        assert any("without a failover" in v for v in checker.violations)

    def test_removed_shard_among_survivors_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "failover", shard="s1", successors="s0")
        emit(tracer, "rebalance", removed="s1", survivors="s0,s1")
        assert any("still contains the removed" in v for v in checker.violations)

    def test_rejoin_from_healthy_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "rejoin", shard="s0")
        assert any(
            "must not shortcut the failure detector" in v
            for v in checker.violations
        )

    def test_rejoin_from_suspect_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "suspect", shard="s0")
        emit(tracer, "rejoin", shard="s0")
        assert any("rejoined from SUSPECT" in v for v in checker.violations)

    def test_transfer_while_not_recovering_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=4, target=8)
        assert any(
            "transfer batch for shard 's1' while it is HEALTHY" in v
            for v in checker.violations
        )

    def test_transfer_from_dead_donor_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "dead", shard="s2")
        emit(tracer, "transfer", shard="s1", donor="s2", watermark=4, target=8)
        assert any("only live shards donate" in v for v in checker.violations)

    def test_transfer_from_recovering_donor_trips(self):
        """A donor that is itself catching up is below its own watermark
        and must not donate."""
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "dead", shard="s2")
        emit(tracer, "rejoin", shard="s2")
        emit(tracer, "transfer", shard="s1", donor="s2", watermark=4, target=8)
        assert any(
            "donor 's2' is RECOVERING" in v for v in checker.violations
        )

    def test_self_donation_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "transfer", shard="s1", donor="s1", watermark=4, target=8)
        assert any("donate ranges to itself" in v for v in checker.violations)

    def test_watermark_regression_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=8, target=16)
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=6, target=16)
        assert any("regressed 8 -> 6" in v for v in checker.violations)

    def test_watermark_overflow_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=20, target=16)
        assert any("overflows its target" in v for v in checker.violations)

    def test_shrinking_target_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=4, target=16)
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=8, target=12)
        assert any("shrank 16 -> 12" in v for v in checker.violations)

    def test_handoff_below_watermark_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=8, target=16)
        emit(tracer, "handoff", shard="s1", ring="s0,s1", watermark=8, target=16)
        assert any(
            "handoff for shard 's1' below its watermark (8/16" in v
            for v in checker.violations
        )

    def test_handoff_after_abort_trips(self):
        """Once the membership re-declared the shard dead, a late
        handoff is illegal — the donors kept ownership."""
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "dead", shard="s1", reason="re-halted")
        emit(tracer, "transfer_abort", shard="s1", watermark=4, target=16)
        emit(tracer, "handoff", shard="s1", ring="s0,s1", watermark=4, target=4)
        assert any(
            "handoff for shard 's1' while it is DEAD" in v
            for v in checker.violations
        )

    def test_handoff_ring_missing_shard_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "handoff", shard="s1", ring="s0,s2", watermark=0, target=0)
        assert any("does not contain the shard" in v for v in checker.violations)

    def test_route_to_recovering_shard_trips_with_watermark(self):
        """The planted-bug shape: a read served below the watermark."""
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "transfer", shard="s1", donor="s0", watermark=8, target=16)
        emit(tracer, "route", shard="s1", op="get", client="c0")
        assert any(
            "RECOVERING shard 's1' below its watermark (8/16" in v
            for v in checker.violations
        )

    def test_replan_while_not_recovering_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "transfer_replan", shard="s0", watermark=0, target=8)
        assert any(
            "re-plan for shard 's0' while it is HEALTHY" in v
            for v in checker.violations
        )

    def test_replan_watermark_overflow_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "transfer_replan", shard="s1", watermark=12, target=10)
        assert any(
            "re-planned watermark for 's1' overflows" in v
            for v in checker.violations
        )

    def test_abort_without_redeclared_death_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s1")
        emit(tracer, "rejoin", shard="s1")
        emit(tracer, "transfer_abort", shard="s1", watermark=4, target=16)
        assert any(
            "aborts follow a re-declared death" in v for v in checker.violations
        )

    def test_halt_on_violation_raises_immediately(self):
        tracer, _ = make_rig(halt_on_violation=True)
        with pytest.raises(InvariantViolation):
            emit(tracer, "failover", shard="s9", successors="s0")

    def test_assert_clean_reports_all(self):
        tracer, checker = make_rig()
        emit(tracer, "dead", shard="s0")
        emit(tracer, "dead", shard="s0")
        with pytest.raises(InvariantViolation, match="1 cluster invariant"):
            checker.assert_clean()
