"""Multi-key transactions: end-to-end paths, leases, drain, planted bug.

Covers the :mod:`repro.cluster.txn` layer the way ``test_migration.py``
covers the migration engine: clean end-to-end commits and aborts under
the always-on invariant gate, the lease-break/steal protocol at the
:class:`TxnManager` level, the migration drain interaction, the
planted-bug fixture proving the new ``txn_*`` checker rules catch a
commit with an unlocked participant, and synthetic-trace units for each
individual rule.
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    RfpCluster,
    TxnConfig,
    TxnManager,
)
from repro.cluster.txn import ABORTED, COMMITTED
from repro.core.config import RfpConfig
from repro.errors import ClusterError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.kv.store import StoreCostModel
from repro.lint import ClusterInvariantChecker, InvariantViolation
from repro.sim import Simulator, Tracer


def make_service(attach_checker=None, replication_factor=2, txn_config=None):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    tracer = Tracer(sim, categories=["cluster"])
    if attach_checker is not None:
        attach_checker(tracer)
    service = RfpCluster(
        sim,
        cluster,
        shards=3,
        rfp_config=RfpConfig(consecutive_slow_calls=1_000_000),
        cost_model=StoreCostModel(jitter_probability=0.0),
        cluster_config=ClusterConfig(replication_factor=replication_factor),
        txn_config=txn_config,
        tracer=tracer,
    )
    return sim, cluster, tracer, service


def distinct_primary_keys(service, count=2):
    """``count`` ascending keys whose primaries are pairwise distinct —
    a transaction that genuinely fans out across shards."""
    keys, primaries = [], set()
    index = 0
    while len(keys) < count:
        key = b"txnkey%03d" % index
        index += 1
        primary = service.ring.lookup(key)
        if primary not in primaries:
            primaries.add(primary)
            keys.append(key)
    return keys


def labels(tracer):
    return [event.label for event in tracer.events()]


class TestMultiPutEndToEnd:
    def test_commit_installs_on_every_replica(self, cluster_invariants):
        sim, cluster, tracer, service = make_service(cluster_invariants)
        keys = distinct_primary_keys(service)
        service.preload([(key, b"old") for key in keys])
        client = service.connect(cluster.machines[4], name="c0")

        sim.process(client.multi_put([(key, b"new") for key in keys]))
        sim.run(until=300.0)

        for key in keys:
            for shard in service.replicas_for(key):
                assert service.peek(shard, key) == b"new", (key, shard)
        txns = service.txns
        assert (txns.begun, txns.committed, txns.aborted) == (1, 1, 0)
        assert txns.active_count == 0 and txns.outstanding_locks == 0
        seen = labels(tracer)
        assert seen.count("txn_begin") == 1
        assert seen.count("txn_lock") == len(keys)
        assert seen.count("txn_commit") == 1

    def test_duplicate_keys_rejected(self):
        _, cluster, _, service = make_service()
        client = service.connect(cluster.machines[4])
        gen = client.multi_put([(b"dup", b"a"), (b"dup", b"b")])
        with pytest.raises(ClusterError, match="distinct"):
            next(gen)

    def test_begin_requires_strictly_ascending_keys(self):
        _, _, _, service = make_service()
        with pytest.raises(ClusterError, match="strictly ascending"):
            service.txns.begin("c0", [b"b", b"a"])
        with pytest.raises(ClusterError, match="at least one key"):
            service.txns.begin("c0", [])

    def test_contending_transactions_serialize(self, cluster_invariants):
        """Two transactions over the same key group both commit — the
        loser of the lock race retries, never deadlocks — and the final
        group state is one transaction's writes in full."""
        sim, cluster, _, service = make_service(cluster_invariants)
        keys = distinct_primary_keys(service)
        service.preload([(key, b"old") for key in keys])
        for index, value in ((0, b"AA"), (1, b"BB")):
            client = service.connect(cluster.machines[4 + index], name=f"c{index}")
            sim.process(client.multi_put([(key, value) for key in keys]))
        sim.run(until=500.0)

        txns = service.txns
        assert (txns.committed, txns.aborted) == (2, 0)
        assert txns.outstanding_locks == 0
        stored = {service.peek(service.ring.lookup(key), key) for key in keys}
        assert len(stored) == 1  # the group is whole . . .
        assert stored <= {b"AA", b"BB"}  # . . . and is one txn's writes

    def test_lock_timeout_aborts_without_side_effects(self, cluster_invariants):
        """A dead primary shows up as exhausted lock attempts; the
        transaction aborts before anything became visible."""
        sim, cluster, tracer, service = make_service(
            cluster_invariants,
            txn_config=TxnConfig(lock_attempts=2, lock_retry_us=5.0),
        )
        keys = distinct_primary_keys(service)
        service.preload([(key, b"old") for key in keys])
        victim = service.ring.lookup(keys[1])
        client = service.connect(cluster.machines[4], name="c0")
        errors = []

        def killer():
            yield sim.timeout(1.0)
            service.kill(victim)

        def body():
            yield sim.timeout(2.0)
            try:
                yield from client.multi_put([(key, b"new") for key in keys])
            except ClusterError as exc:
                errors.append(exc)

        sim.process(killer())
        sim.process(body())
        sim.run(until=300.0)  # long enough for the failover to settle

        assert errors and "gave up locking" in str(errors[0])
        txns = service.txns
        assert (txns.committed, txns.aborted) == (0, 1)
        assert txns.outstanding_locks == 0
        aborts = [e for e in tracer.events() if e.label == "txn_abort"]
        assert [e.data["reason"] for e in aborts] == ["lock-timeout"]
        # The failover may have appointed a fresh backup that never got
        # the preload (no repair ran), so a hole is legal — but nothing
        # anywhere may hold the aborted transaction's value.
        for key in keys:
            for shard in service.shards:
                assert service.peek(shard, key) in (b"old", None), (key, shard)


class TestLockLeases:
    def test_expired_lease_is_broken_and_holder_aborts(self, cluster_invariants):
        """The lease protocol end to end at the manager level: a live
        lease blocks a waiter; an expired one is stolen; the original
        holder's commit fails its lease re-check and aborts."""
        sim, _, _, service = make_service(cluster_invariants)
        txns = service.txns
        key = b"leasekey"
        outcomes = {}

        def driver():
            first = txns.begin("a", [key])
            assert txns.grant(first, key, "shard0")
            second = txns.begin("b", [key])
            assert not txns.grant(second, key, "shard0")  # live lease
            yield sim.timeout(txns.config.lock_lease_us + 1.0)
            assert txns.grant(second, key, "shard0")  # expired: broken
            txns.stage(second, key, b"winner", service.replicas_for(key))
            outcomes["first"] = txns.commit(first)
            outcomes["second"] = txns.commit(second)

        sim.process(driver())
        sim.run(until=txns.config.lock_lease_us + 50.0)

        assert outcomes == {"first": ABORTED, "second": COMMITTED}
        assert txns.outstanding_locks == 0
        assert service.peek(service.ring.lookup(key), key) == b"winner"


class TestMigrationDrain:
    def test_vnode_move_completes_under_back_to_back_transactions(
        self, cluster_invariants
    ):
        """The starvation case the admission gate exists for: a writer
        issuing multi-PUTs back to back (zero sim time between commit
        and the next begin) must not hold the cutover hostage."""
        sim, cluster, _, service = make_service(
            cluster_invariants, replication_factor=1
        )
        keys = distinct_primary_keys(service)
        service.preload([(key, b"\x00" * 8) for key in keys])
        token = service.ring.token_of(keys[0])
        donor = service.ring.owner_of(token)
        recipient = sorted(n for n in service.shards if n != donor)[0]
        client = service.connect(cluster.machines[4], name="w0")

        def writer():
            for round_no in range(30):
                value = b"%08d" % round_no
                yield from client.multi_put([(key, value) for key in keys])

        sim.process(writer())
        migration = service.move_vnodes([token], recipient)
        sim.run(until=5_000.0)

        assert not migration.active and not migration.aborted
        assert migration.watermark == migration.target
        assert service.ring.owner_of(token) == recipient
        txns = service.txns
        assert (txns.committed, txns.aborted) == (30, 0)
        assert txns.active_count == 0 and not txns.draining
        # The writer's last value followed the range to its new owner.
        assert service.peek(recipient, keys[0]) == b"%08d" % 29


class TestPlantedBug:
    def test_checker_flags_commit_with_unlocked_participant(self, monkeypatch):
        """Plant the bug the txn invariants exist to catch: a lock
        manager that *claims* a grant without installing it commits a
        transaction while one participant was never actually locked —
        atomicity now rests on luck.  The checker, attached to the same
        live trace the clean tests use, must flag the commit."""
        sim, cluster, tracer, service = make_service()
        checker = ClusterInvariantChecker().attach(tracer)
        keys = distinct_primary_keys(service)
        service.preload([(key, b"old") for key in keys])
        skipped = keys[1]
        real_grant = TxnManager.grant

        def leaky_grant(self, txn_id, key, shard):
            if key == skipped:
                return True  # the planted bug: grant without a lease
            return real_grant(self, txn_id, key, shard)

        monkeypatch.setattr(TxnManager, "grant", leaky_grant)
        monkeypatch.setattr(
            TxnManager, "_all_locked", lambda self, state: True
        )
        client = service.connect(cluster.machines[4], name="c0")
        sim.process(client.multi_put([(key, b"new") for key in keys]))
        sim.run(until=300.0)

        # The bug is real: the transaction committed anyway.
        assert service.txns.committed == 1
        assert not checker.ok
        assert any(
            "commits with only 1/2 participants locked" in violation
            for violation in checker.violations
        )


def make_rig():
    sim = Simulator()
    tracer = Tracer(sim, categories=["cluster"])
    checker = ClusterInvariantChecker().attach(tracer)
    return tracer, checker


def emit(tracer, label, **data):
    tracer.record("cluster", label, **data)


class TestTxnCheckerRules:
    """Synthetic-trace units, one per ``txn_*`` rule (the idiom of
    ``test_cluster_invariants.py``)."""

    def test_clean_txn_sequence_passes(self):
        tracer, checker = make_rig()
        emit(tracer, "txn_begin", txn=1, client="c0", keys=2, participants="s0,s1")
        emit(tracer, "txn_lock", txn=1, key="aa", shard="s0", order=1)
        emit(tracer, "txn_lock", txn=1, key="bb", shard="s1", order=2)
        emit(tracer, "txn_commit", txn=1, locks=2, keys=2)
        emit(tracer, "txn_begin", txn=2, client="c1", keys=1, participants="s0")
        emit(tracer, "txn_lock", txn=2, key="aa", shard="s0", order=1)
        emit(tracer, "txn_abort", txn=2, locks=1, reason="lock-timeout")
        checker.assert_clean()
        checker.assert_no_leaked_leases()
        assert checker.events_checked == 7

    def test_txn_id_reuse_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "txn_begin", txn=1, client="c0", keys=1, participants="s0")
        emit(tracer, "txn_abort", txn=1, locks=0, reason="lock-timeout")
        emit(tracer, "txn_begin", txn=1, client="c1", keys=1, participants="s0")
        assert any("txn id 1 reused" in v for v in checker.violations)

    def test_lock_out_of_order_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "txn_begin", txn=1, client="c0", keys=2, participants="s0")
        emit(tracer, "txn_lock", txn=1, key="bb", shard="s0", order=1)
        emit(tracer, "txn_lock", txn=1, key="aa", shard="s0", order=2)
        assert any("lock ordering violated" in v for v in checker.violations)

    def test_lock_for_unopened_txn_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "txn_lock", txn=9, key="aa", shard="s0", order=1)
        assert any("not open" in v for v in checker.violations)

    def test_lock_order_field_mismatch_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "txn_begin", txn=1, client="c0", keys=2, participants="s0")
        emit(tracer, "txn_lock", txn=1, key="aa", shard="s0", order=2)
        assert any("granted 1 locks" in v for v in checker.violations)

    def test_lock_beyond_declared_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "txn_begin", txn=1, client="c0", keys=1, participants="s0")
        emit(tracer, "txn_lock", txn=1, key="aa", shard="s0", order=1)
        emit(tracer, "txn_lock", txn=1, key="bb", shard="s0", order=2)
        assert any("declared only 1" in v for v in checker.violations)

    def test_commit_with_missing_locks_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "txn_begin", txn=1, client="c0", keys=2, participants="s0")
        emit(tracer, "txn_lock", txn=1, key="aa", shard="s0", order=1)
        emit(tracer, "txn_commit", txn=1, locks=1, keys=2)
        assert any(
            "commits with only 1/2 participants locked" in v
            for v in checker.violations
        )

    def test_commit_locks_field_mismatch_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "txn_begin", txn=1, client="c0", keys=1, participants="s0")
        emit(tracer, "txn_lock", txn=1, key="aa", shard="s0", order=1)
        emit(tracer, "txn_commit", txn=1, locks=0, keys=1)
        assert any("reports 0 locks" in v for v in checker.violations)

    def test_commit_of_unopened_txn_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "txn_commit", txn=5, locks=0, keys=0)
        assert any("not open" in v for v in checker.violations)

    def test_abort_of_unopened_txn_trips(self):
        tracer, checker = make_rig()
        emit(tracer, "txn_abort", txn=5, locks=0, reason="lock-timeout")
        assert any("not open" in v for v in checker.violations)

    def test_leaked_lease_audit_raises(self):
        tracer, checker = make_rig()
        emit(tracer, "txn_begin", txn=1, client="c0", keys=1, participants="s0")
        emit(tracer, "txn_lock", txn=1, key="aa", shard="s0", order=1)
        checker.assert_clean()  # no rule broke . . .
        assert checker.open_lock_leases() == [(1, "aa")]
        with pytest.raises(InvariantViolation, match="leaked lock lease"):
            checker.assert_no_leaked_leases()  # . . . but the lease leaked
