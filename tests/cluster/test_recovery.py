"""Shard recovery & rejoin: crash, stream ranges back, re-enter the ring.

Deterministic crash/rejoin cycles driven by :class:`repro.cluster.FaultPlan`
— the same harness the property tests and the ``ext-cluster-rejoin``
benchmark use — with the cluster invariant checker attached to every run
(via the always-on ``cluster_invariants`` fixture) and the RFP protocol
checkers opt-in via ``--rfp-invariants``.
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    Fault,
    FaultPlan,
    Membership,
    RecoveryConfig,
    RfpCluster,
    ShardStatus,
)
from repro.core.config import RfpConfig
from repro.errors import ClusterError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.kv.store import StoreCostModel
from repro.sim import Simulator, Tracer

KEYS = [f"key{i:04d}".encode() for i in range(40)]


def make_service(attach_checker=None, shards=3):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    tracer = Tracer(sim, categories=["cluster"])
    if attach_checker is not None:
        attach_checker(tracer)
    service = RfpCluster(
        sim,
        cluster,
        shards=shards,
        rfp_config=RfpConfig(consecutive_slow_calls=1),
        cost_model=StoreCostModel(jitter_probability=0.0),
        cluster_config=ClusterConfig(replication_factor=2),
        tracer=tracer,
    )
    service.preload([(key, b"v" * 32) for key in KEYS])
    return sim, cluster, tracer, service


def writer_clients(sim, cluster, service, clients=4):
    """Closed-loop GET/PUT clients; returns the acked-write ledger."""
    acked = {}

    def body(client, my_keys):
        sequence = 0
        while True:
            key = my_keys[sequence % len(my_keys)]
            if sequence % 3 == 2:
                sequence += 1
                value = b"w%04d" % sequence
                yield from client.put(key, value)
                acked[key] = value
            else:
                sequence += 1
                yield from client.get(key)

    for index in range(clients):
        client = service.connect(cluster.machines[3 + index], name=f"c{index}")
        sim.process(body(client, KEYS[index::4]))
    return acked


def cluster_labels(tracer):
    return [event.label for event in tracer.events()]


class TestFullCycle:
    """kill -> repair -> transfer -> handoff restores the exact ring."""

    def run_cycle(self, attach_checker, until=1500.0):
        sim, cluster, tracer, service = make_service(attach_checker)
        pre_ring = list(service.ring.nodes)
        pre_placement = {key: service.replicas_for(key) for key in KEYS}
        acked = writer_clients(sim, cluster, service)
        plan = FaultPlan.kill_then_repair("shard1", 400.0, 800.0)
        plan.arm(sim, service, recovery_config=RecoveryConfig(batch_keys=8))
        sim.run(until=until)
        return sim, service, tracer, plan, pre_ring, pre_placement, acked

    def test_ring_restored_exactly(self, cluster_invariants):
        _, service, _, plan, pre_ring, pre_placement, _ = self.run_cycle(
            cluster_invariants
        )
        recovery = plan.recoveries[0]
        assert not recovery.active and not recovery.aborted
        assert service.ring.nodes == pre_ring
        assert {key: service.replicas_for(key) for key in KEYS} == pre_placement
        assert service.membership.status("shard1") is ShardStatus.HEALTHY
        assert [event.shard for event in service.failover.reinstatements] == [
            "shard1"
        ]

    def test_watermark_reaches_target(self, cluster_invariants):
        _, service, _, plan, _, _, _ = self.run_cycle(cluster_invariants)
        recovery = plan.recoveries[0]
        assert recovery.target > 0
        assert recovery.watermark == recovery.target
        assert recovery.event.batches > 1  # actually streamed, not one blob
        metrics = service.metrics.shard("shard1")
        assert metrics.transfer_batches.value == recovery.event.batches
        assert metrics.transferred_keys.value == recovery.event.transferred_keys
        assert metrics.transferred_bytes.value == recovery.event.transferred_bytes
        assert metrics.recoveries.value == 1

    def test_acked_writes_readable_from_every_replica(self, cluster_invariants):
        _, service, _, _, _, _, acked = self.run_cycle(cluster_invariants)
        assert acked  # writers made progress
        for key, value in acked.items():
            for shard in service.replicas_for(key):
                stored = service.peek(shard, key)
                # The stored value may be *newer* than the last ack (a
                # write in flight at the window cut) but never older.
                assert stored is not None
                assert stored >= value, (key, shard, stored, value)

    def test_trace_has_rejoin_transfer_handoff_sequence(self, cluster_invariants):
        _, _, tracer, _, _, _, _ = self.run_cycle(cluster_invariants)
        labels = cluster_labels(tracer)
        assert "rejoin" in labels and "transfer" in labels and "handoff" in labels
        assert labels.index("dead") < labels.index("rejoin")
        assert labels.index("rejoin") < labels.index("transfer")
        assert labels.index("transfer") < labels.index("handoff")
        assert "transfer_abort" not in labels

    def test_rejoiner_pulls_donors_stay_inbound_only(
        self, cluster_invariants, rfp_invariants
    ):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        cluster_tracer = Tracer(sim, categories=["cluster"])
        cluster_invariants(cluster_tracer)
        shard_tracers = {f"shard{i}": Tracer(sim, capacity=1) for i in range(3)}
        for tracer in shard_tracers.values():
            rfp_invariants(tracer, config=RfpConfig(consecutive_slow_calls=1))
        service = RfpCluster(
            sim,
            cluster,
            shards=3,
            rfp_config=RfpConfig(consecutive_slow_calls=1),
            cost_model=StoreCostModel(jitter_probability=0.0),
            cluster_config=ClusterConfig(replication_factor=2),
            tracer=cluster_tracer,
            shard_tracers=shard_tracers,
        )
        service.preload([(key, b"v" * 32) for key in KEYS])
        writer_clients(sim, cluster, service)
        plan = FaultPlan.kill_then_repair("shard1", 400.0, 800.0)
        plan.arm(sim, service)
        sim.run(until=1500.0)
        recovery = plan.recoveries[0]
        assert not recovery.active and not recovery.aborted
        # The rejoiner's only out-bound verbs are its ranged reads.
        rejoiner_nic = service.shards["shard1"].machine.rnic
        assert rejoiner_nic.outbound_ops == recovery.event.batches
        # Donors served the stream in-bound: zero out-bound verbs ever.
        for donor in ("shard0", "shard2"):
            assert service.shards[donor].machine.rnic.outbound_ops == 0


class TestRehaltMidTransfer:
    """A second crash mid-transfer aborts: donors keep ownership."""

    def run_rehalt(self, attach_checker, until=2000.0):
        sim, cluster, tracer, service = make_service(attach_checker)
        writer_clients(sim, cluster, service)
        # pace_us=150 stretches the transfer so the second kill at 900
        # lands mid-stream (lease expiry re-declares DEAD by ~1000).
        plan = FaultPlan(
            [
                Fault(400.0, "kill", "shard1"),
                Fault(800.0, "repair", "shard1"),
                Fault(900.0, "kill", "shard1"),
            ]
        )
        plan.arm(sim, service, recovery_config=RecoveryConfig(pace_us=150.0))
        sim.run(until=until)
        return sim, service, tracer, plan

    def test_abort_leaves_donors_owning(self, cluster_invariants):
        _, service, tracer, plan = self.run_rehalt(cluster_invariants)
        recovery = plan.recoveries[0]
        assert recovery.aborted and not recovery.active
        assert service.membership.status("shard1") is ShardStatus.DEAD
        # The ring was never touched: no reinstatement, no handoff, and
        # the survivors still own every range.
        assert service.ring.nodes == ["shard0", "shard2"]
        assert service.failover.reinstatements == []
        labels = cluster_labels(tracer)
        assert "handoff" not in labels
        assert "transfer_abort" in labels
        assert service.metrics.shard("shard1").recoveries.value == 0

    def test_no_duplicate_handoff_on_second_repair(self, cluster_invariants):
        """After an abort, a fresh repair runs a whole new recovery and
        performs exactly one handoff."""
        sim, service, tracer, plan = self.run_rehalt(cluster_invariants)
        second = service.repair("shard1")
        sim.run(until=3500.0)
        assert not second.active and not second.aborted
        assert service.ring.nodes == ["shard0", "shard1", "shard2"]
        assert service.membership.status("shard1") is ShardStatus.HEALTHY
        assert [event.shard for event in service.failover.reinstatements] == [
            "shard1"
        ]
        assert cluster_labels(tracer).count("handoff") == 1
        assert service.metrics.shard("shard1").recoveries.value == 1


class TestTopologyChangeMidTransfer:
    """The ring changing under a live transfer re-plans it (a stale plan
    would make the rejoiner routable while missing keys the actual ring
    places on it)."""

    def run_second_failure(self, attach_checker, until=4000.0):
        sim, cluster, tracer, service = make_service(attach_checker)
        writer_clients(sim, cluster, service)
        plan = FaultPlan(
            [
                Fault(400.0, "kill", "shard1"),
                Fault(800.0, "repair", "shard1"),
                # shard2 dies mid-transfer: its failover shrinks the ring
                # shard1's plan and restored ring were computed against.
                Fault(900.0, "kill", "shard2"),
            ]
        )
        plan.arm(
            sim,
            service,
            recovery_config=RecoveryConfig(pace_us=150.0, batch_keys=4),
        )
        sim.run(until=until)
        return sim, service, tracer, plan

    def test_replan_restores_the_actual_ring(self, cluster_invariants):
        _, service, tracer, plan = self.run_second_failure(cluster_invariants)
        recovery = plan.recoveries[0]
        assert not recovery.active and not recovery.aborted
        assert "transfer_replan" in cluster_labels(tracer)
        # The handoff re-entered the ring that actually exists — the
        # two-survivor one — not the stale three-shard restored ring.
        assert recovery.restored_ring.nodes == ["shard0", "shard1"]
        assert service.ring.nodes == ["shard0", "shard1"]
        assert service.membership.status("shard1") is ShardStatus.HEALTHY
        assert service.membership.status("shard2") is ShardStatus.DEAD

    def test_rejoiner_holds_every_key_the_ring_places_on_it(
        self, cluster_invariants
    ):
        """The moment the handoff makes the shard routable, it must hold
        every acked key the actual (two-node, RF=2) ring places on it —
        i.e. every acked key its donor holds.  Peeking at the handoff
        instant matters: later write traffic would wash out a stale plan
        (the shard would be routable-but-behind only transiently)."""
        sim, cluster, tracer, service = make_service(cluster_invariants)
        acked = writer_clients(sim, cluster, service)
        missing_at_handoff = []

        def snapshot(event):
            if event.category == "cluster" and event.label == "handoff":
                missing_at_handoff.append(
                    [
                        key
                        for key in acked
                        if service.peek("shard0", key) is not None
                        and service.peek("shard1", key) is None
                    ]
                )

        tracer.subscribe(snapshot)
        plan = FaultPlan(
            [
                Fault(400.0, "kill", "shard1"),
                Fault(800.0, "repair", "shard1"),
                Fault(900.0, "kill", "shard2"),
            ]
        )
        plan.arm(
            sim,
            service,
            recovery_config=RecoveryConfig(pace_us=150.0, batch_keys=4),
        )
        sim.run(until=4000.0)
        assert not plan.recoveries[0].active
        assert missing_at_handoff == [[]]

    def test_concurrent_recoveries_replan_on_each_others_handoff(
        self, cluster_invariants
    ):
        """Two shards recover at once: the first handoff grows the ring
        under the second transfer, which must re-plan against it (its
        restored ring was computed while the first was still out)."""
        sim, cluster, tracer, service = make_service(cluster_invariants)
        writer_clients(sim, cluster, service)
        plan = FaultPlan(
            [
                Fault(400.0, "kill", "shard1"),
                Fault(500.0, "kill", "shard2"),
                Fault(800.0, "repair", "shard1"),
                Fault(860.0, "repair", "shard2"),
            ]
        )
        plan.arm(
            sim,
            service,
            recovery_config=RecoveryConfig(pace_us=100.0, batch_keys=8),
        )
        sim.run(until=5000.0)
        assert len(plan.recoveries) == 2
        for recovery in plan.recoveries:
            assert not recovery.active and not recovery.aborted
        assert "transfer_replan" in cluster_labels(tracer)
        assert service.ring.nodes == ["shard0", "shard1", "shard2"]
        for shard in service.shards:
            assert service.membership.status(shard) is ShardStatus.HEALTHY


class TestKillInHandoffWindow:
    """A kill landing after the last batch but before the lease expires
    must not hand off: the abort flag only flips on the DEAD transition,
    and promoting a halted shard would make every route to it time out."""

    def test_no_promotion_of_halted_shard(self, cluster_invariants):
        sim, cluster, tracer, service = make_service(cluster_invariants)
        writer_clients(sim, cluster, service)
        # batch_keys=64 -> one batch per donor; pace 400 leaves a wide
        # quiet window after the final batch in which the kill lands,
        # with the handoff (and the lease expiry) still ahead.
        plan = FaultPlan(
            [
                Fault(400.0, "kill", "shard1"),
                Fault(800.0, "repair", "shard1"),
                Fault(1595.0, "kill", "shard1"),
            ]
        )
        plan.arm(
            sim,
            service,
            recovery_config=RecoveryConfig(batch_keys=64, pace_us=400.0),
        )
        sim.run(until=2500.0)
        recovery = plan.recoveries[0]
        # The stream had fully caught up — the exact hole the watermark
        # check alone cannot see — yet the shard must not re-enter.
        assert recovery.watermark == recovery.target
        assert recovery.aborted and not recovery.active
        assert service.membership.status("shard1") is ShardStatus.DEAD
        assert service.ring.nodes == ["shard0", "shard2"]
        assert service.failover.reinstatements == []
        labels = cluster_labels(tracer)
        assert "handoff" not in labels
        assert "transfer_abort" in labels


class TestPutRecheckIsNotARetry:
    def test_replica_gain_on_final_attempt_still_acks(self):
        """A ring that gains a member between a PUT's last write and its
        ack must not make the client see a failure for a durable write:
        the re-write loop is bookkeeping, not a routing retry."""
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        service = RfpCluster(
            sim,
            cluster,
            shards=2,
            rfp_config=RfpConfig(consecutive_slow_calls=1),
            cost_model=StoreCostModel(jitter_probability=0.0),
            cluster_config=ClusterConfig(replication_factor=2, max_op_retries=1),
        )
        client = service.connect(cluster.machines[3])
        key = b"key0001"
        service.preload([(key, b"seed")])
        real = client._healthy_replicas
        calls = []

        def gains_member_after_first_read(k):
            calls.append(k)
            # First read (the write set): one replica short, as if the
            # handoff had not landed yet; every later read (the ack-time
            # re-check and the re-write round) sees the full set.
            if len(calls) == 1:
                return real(k)[:1]
            return real(k)

        client._healthy_replicas = gains_member_after_first_read
        done = []

        def body():
            yield from client.put(key, b"value-1")
            done.append(True)

        sim.process(body())
        sim.run(until=500.0)
        assert done == [True]
        for shard in service.replicas_for(key):
            assert service.peek(shard, key) == b"value-1"


class TestListenerLifecycle:
    def test_listener_released_after_handoff(self, cluster_invariants):
        sim, cluster, _, service = make_service(cluster_invariants)
        writer_clients(sim, cluster, service)
        baseline = len(service.membership._listeners)
        plan = FaultPlan.kill_then_repair("shard1", 400.0, 800.0)
        plan.arm(sim, service, recovery_config=RecoveryConfig(batch_keys=8))
        sim.run(until=1500.0)
        assert not plan.recoveries[0].active
        assert len(service.membership._listeners) == baseline

    def test_listener_released_after_abort(self, cluster_invariants):
        sim, cluster, _, service = make_service(cluster_invariants)
        writer_clients(sim, cluster, service)
        baseline = len(service.membership._listeners)
        plan = FaultPlan(
            [
                Fault(400.0, "kill", "shard1"),
                Fault(800.0, "repair", "shard1"),
                Fault(900.0, "kill", "shard1"),
            ]
        )
        plan.arm(sim, service, recovery_config=RecoveryConfig(pace_us=150.0))
        sim.run(until=2000.0)
        assert plan.recoveries[0].aborted
        assert len(service.membership._listeners) == baseline


class TestRepairValidation:
    def test_repair_of_live_shard_rejected(self):
        _, _, _, service = make_service()
        with pytest.raises(ClusterError, match="not dead"):
            service.repair("shard1")

    def test_repair_races_the_detector(self):
        """A halted shard whose lease has not expired yet is not DEAD;
        repairing it would shortcut the failure detector."""
        sim, _, _, service = make_service()
        sim.run(until=100.0)
        service.kill("shard1")
        with pytest.raises(ClusterError, match="races the failure detector"):
            service.repair("shard1")

    def test_double_repair_rejected(self, cluster_invariants):
        sim, _, _, service = make_service(cluster_invariants)
        sim.schedule(400.0, service.kill, "shard1")
        sim.run(until=800.0)
        service.repair("shard1", recovery_config=RecoveryConfig(pace_us=500.0))
        with pytest.raises(ClusterError, match="not dead"):
            service.repair("shard1")

    def test_rejoin_requires_dead(self):
        sim = Simulator()
        membership = Membership(sim)
        membership.register("s0")
        with pytest.raises(ClusterError, match="only DEAD shards rejoin"):
            membership.rejoin("s0")


class TestPlantedBug:
    def test_checker_catches_route_below_watermark(self, monkeypatch):
        """Plant the bug the rejoin invariants exist to catch: a router
        that treats RECOVERING as routable (plus an eagerly re-entered
        ring) serves reads from a shard below its watermark.  The
        checker — attached to the *same* live trace the clean tests
        use — must flag it."""
        from repro.lint.invariants import ClusterInvariantChecker

        sim, cluster, tracer, service = make_service()
        checker = ClusterInvariantChecker().attach(tracer)
        writer_clients(sim, cluster, service)
        plan = FaultPlan.kill_then_repair("shard1", 400.0, 800.0)
        # A glacial transfer keeps shard1 RECOVERING for the whole run.
        plan.arm(sim, service, recovery_config=RecoveryConfig(pace_us=800.0))
        monkeypatch.setattr(
            Membership,
            "is_routable",
            lambda self, node: self.status(node)
            in (ShardStatus.HEALTHY, ShardStatus.RECOVERING),
        )
        # The buggy "eager rebalance": re-enter the ring before the
        # watermark catches up.
        sim.schedule(850.0, service.failover.reinstate, "shard1")
        sim.run(until=1200.0)
        assert plan.recoveries[0].active  # still mid-transfer
        assert not checker.ok
        assert any("below its watermark" in v for v in checker.violations)


class TestListenerHygiene:
    """Coordinators detach from membership on every recovery exit path.

    The recovery coordinator subscribes a status listener for its
    lifetime; a leak here is invisible to the happy-path tests (a stale
    listener on a finished recovery mostly no-ops) but each leaked
    subscription is a latent callback into dead state.  The atomicity
    analyzer pins the listener bodies (``_on_status_change``) as
    declared-atomic; this test pins the attach/detach accounting.
    """

    def test_handoff_path_detaches(self, cluster_invariants):
        sim, cluster, _, service = make_service(cluster_invariants)
        writer_clients(sim, cluster, service)
        baseline = len(service.membership._listeners)
        plan = FaultPlan.kill_then_repair("shard1", 400.0, 800.0)
        plan.arm(sim, service, recovery_config=RecoveryConfig(pace_us=50.0))
        sim.run(until=900.0)  # mid-transfer: the listener is attached
        recovery = plan.recoveries[0]
        assert recovery.active
        assert len(service.membership._listeners) == baseline + 1
        sim.run(until=2500.0)
        assert not recovery.active and not recovery.aborted
        assert len(service.membership._listeners) == baseline

    def test_abort_path_detaches(self, cluster_invariants):
        sim, cluster, _, service = make_service(cluster_invariants)
        writer_clients(sim, cluster, service)
        baseline = len(service.membership._listeners)
        plan = FaultPlan(
            [
                Fault(400.0, "kill", "shard1"),
                Fault(800.0, "repair", "shard1"),
                Fault(900.0, "kill", "shard1"),
            ]
        )
        plan.arm(sim, service, recovery_config=RecoveryConfig(pace_us=150.0))
        sim.run(until=2000.0)
        recovery = plan.recoveries[0]
        assert recovery.aborted and not recovery.active
        assert len(service.membership._listeners) == baseline

    def test_repeated_cycles_do_not_accumulate(self, cluster_invariants):
        sim, cluster, _, service = make_service(cluster_invariants)
        writer_clients(sim, cluster, service)
        baseline = len(service.membership._listeners)
        plan = FaultPlan(
            [
                Fault(400.0, "kill", "shard1"),
                Fault(800.0, "repair", "shard1"),
                Fault(2400.0, "kill", "shard1"),
                Fault(2800.0, "repair", "shard1"),
            ]
        )
        plan.arm(sim, service, recovery_config=RecoveryConfig(batch_keys=8))
        sim.run(until=4500.0)
        assert len(plan.recoveries) == 2
        for recovery in plan.recoveries:
            assert not recovery.active and not recovery.aborted
        assert len(service.membership._listeners) == baseline
