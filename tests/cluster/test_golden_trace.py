"""Golden-trace determinism: the full trace stream is pinned to a fixture.

One seeded cluster failover run — tracing fully on, with the
:class:`ClusterInvariantChecker` subscribed so the run is audited while
it is recorded — produces a byte-for-byte identical
``(at_us, category, label)`` stream under the fast engine, under the
reference engine, and against the checked-in fixture.  The fixture is
the determinism contract for the whole stack above the engine: any
reordering introduced by future engine work shows up as a diff here,
with the first divergent line pointing at the guilty event.

Regenerate (after an *intentional* model change) with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/cluster/test_golden_trace.py

and review the diff like any other behavioural change.
"""

import os
import struct

from repro.cluster import ClusterConfig, RfpCluster
from repro.core.config import RfpConfig
from repro.hw.cluster import build_cluster
from repro.hw.specs import CLUSTER_EUROSYS17, ClusterSpec
from repro.kv.store import StoreCostModel
from repro.lint.invariants import ClusterInvariantChecker
from repro.sim.core import Simulator
from repro.sim.random import seeded_rng
from repro.sim.trace import Tracer

FIXTURE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "golden_trace.txt"
)

SHARDS = 3
CLIENTS = 4
RECORDS = 48
WINDOW_US = 600.0
VALUE_BYTES = 64

_SEQ = struct.Struct("<Q")


def _value(sequence: int) -> bytes:
    return _SEQ.pack(sequence) + b"\x00" * (VALUE_BYTES - 8)


def run_traced(reference: bool):
    """One seeded failover run; returns (trace lines, dispatched)."""
    sim = Simulator(reference=reference)
    spec = ClusterSpec(
        machine=CLUSTER_EUROSYS17.machine,
        machines=8,
        switch_hop_us=CLUSTER_EUROSYS17.switch_hop_us,
    )
    cluster = build_cluster(sim, spec)
    # One shared tracer for the cluster layer *and* every shard's RFP
    # protocol layer: a single totally-ordered stream, in record-call
    # order, is exactly what the fixture pins.
    tracer = Tracer(sim)
    ClusterInvariantChecker().attach(tracer)
    service = RfpCluster(
        sim,
        cluster,
        shards=SHARDS,
        rfp_config=RfpConfig(consecutive_slow_calls=1),
        cost_model=StoreCostModel(jitter_probability=0.0),
        cluster_config=ClusterConfig(replication_factor=2),
        tracer=tracer,
        shard_tracers={f"shard{i}": tracer for i in range(SHARDS)},
    )
    keys = [f"key{i:06d}".encode() for i in range(RECORDS)]
    service.preload([(key, _value(0)) for key in keys])
    per_client = RECORDS // CLIENTS
    owned = {
        c: keys[c * per_client : (c + 1) * per_client] for c in range(CLIENTS)
    }

    def loop(client, client_id):
        rng = seeded_rng(client_id)
        mine = owned[client_id]
        sequence = 0
        while True:
            if sequence % 4 == 3:
                key = mine[(sequence // 4) % len(mine)]
                sequence += 1
                yield from client.put(key, _value(sequence))
            else:
                sequence += 1
                key = keys[int(rng.integers(len(keys)))]
                yield from client.get(key)

    for index in range(CLIENTS):
        machine = cluster.machines[SHARDS + index % (spec.machines - SHARDS)]
        client = service.connect(machine, name=f"c{index}")
        sim.process(loop(client, index))
    sim.schedule(WINDOW_US * 0.5, service.kill, "shard1")
    sim.run(until=WINDOW_US)
    lines = [
        f"{event.at_us!r} {event.category} {event.label}"
        for event in tracer.events()
    ]
    return lines, sim.dispatched


class TestGoldenTrace:
    def test_fast_engine_matches_fixture(self):
        lines, _ = run_traced(reference=False)
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            with open(FIXTURE, "w", encoding="utf-8") as sink:
                sink.write("\n".join(lines) + "\n")
        with open(FIXTURE, encoding="utf-8") as source:
            golden = source.read().splitlines()
        assert len(lines) > 500, "scenario too quiet to pin anything"
        assert lines == golden

    def test_reference_engine_matches_fixture(self):
        lines, _ = run_traced(reference=True)
        with open(FIXTURE, encoding="utf-8") as source:
            golden = source.read().splitlines()
        assert lines == golden

    def test_engines_dispatch_identically(self):
        fast_lines, fast_dispatched = run_traced(reference=False)
        ref_lines, ref_dispatched = run_traced(reference=True)
        assert fast_lines == ref_lines
        assert fast_dispatched == ref_dispatched
