"""Integration tests for the sharded RFP cluster service.

Small-scale versions of what the cluster benchmarks measure: routing,
batching, failure detection + replica takeover, durability of
acknowledged writes, NIC silence on healthy shards, and per-shard (R, F)
adaptation diverging with per-shard value sizes.
"""

import pytest

from repro.cluster import ClusterConfig, RfpCluster, ShardStatus
from repro.core.config import RfpConfig
from repro.errors import ClusterError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.kv.store import StoreCostModel
from repro.lint.invariants import ClusterInvariantChecker, RfpInvariantChecker
from repro.sim import Simulator, Tracer


def make_service(shards=3, replication_factor=2, shard_tracers=None, **kwargs):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    tracer = Tracer(sim, categories=["cluster"])
    service = RfpCluster(
        sim,
        cluster,
        shards=shards,
        cluster_config=ClusterConfig(replication_factor=replication_factor),
        tracer=tracer,
        shard_tracers=shard_tracers,
        **kwargs,
    )
    return sim, cluster, tracer, service


KEYS = [f"key{i:04d}".encode() for i in range(40)]


class TestConfig:
    def test_replication_factor_validated(self):
        with pytest.raises(ClusterError):
            ClusterConfig(replication_factor=0)

    def test_op_timeout_validated(self):
        with pytest.raises(ClusterError):
            ClusterConfig(op_timeout_us=0.0)

    def test_needs_enough_machines(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        with pytest.raises(ClusterError):
            RfpCluster(sim, cluster, shards=2, server_machines=cluster.machines[:1])

    def test_unknown_shard_rejected(self):
        _, _, _, service = make_service(shards=2)
        with pytest.raises(ClusterError):
            service.kill("shard9")


class TestRouting:
    def test_get_put_roundtrip(self):
        sim, cluster, _, service = make_service()
        service.preload([(key, b"v" * 32) for key in KEYS])
        client = service.connect(cluster.machines[3])
        results = []

        def body():
            value = yield from client.get(KEYS[0])
            results.append(value)
            yield from client.put(KEYS[1], b"fresh")
            value = yield from client.get(KEYS[1])
            results.append(value)
            value = yield from client.get(b"missing")
            results.append(value)

        sim.process(body())
        sim.run(until=500.0)
        assert results == [b"v" * 32, b"fresh", None]

    def test_routes_follow_the_ring(self):
        sim, cluster, tracer, service = make_service()
        service.preload([(key, b"v" * 32) for key in KEYS])
        client = service.connect(cluster.machines[3])

        def body():
            for key in KEYS[:10]:
                yield from client.get(key)

        sim.process(body())
        sim.run(until=500.0)
        routed = [e.data["shard"] for e in tracer.events(label="route")]
        assert routed == [service.ring.lookup(key) for key in KEYS[:10]]

    def test_put_writes_every_replica(self):
        sim, cluster, _, service = make_service(replication_factor=2)
        service.preload([(key, b"v" * 32) for key in KEYS])
        client = service.connect(cluster.machines[3])

        def body():
            yield from client.put(KEYS[5], b"both")

        sim.process(body())
        sim.run(until=500.0)
        for shard_name in service.ring.lookup_replicas(KEYS[5], 2):
            assert service.peek(shard_name, KEYS[5]) == b"both"

    def test_batch_groups_by_shard_and_keeps_order(self):
        sim, cluster, _, service = make_service()
        service.preload([(key, b"v" * 32) for key in KEYS])
        client = service.connect(cluster.machines[3])
        operations = [("get", KEYS[0]), ("put", KEYS[1], b"w"), ("get", KEYS[1])]
        out = []

        def body():
            results = yield from client.execute_batch(operations)
            out.append(results)

        sim.process(body())
        sim.run(until=500.0)
        (results,) = out
        assert results[0] == b"v" * 32
        assert results[1] is None
        # Same-shard ordering: the GET behind the PUT of KEYS[1] sees it.
        assert results[2] == b"w"

    def test_metrics_count_operations(self):
        sim, cluster, _, service = make_service()
        service.preload([(key, b"v" * 32) for key in KEYS])
        client = service.connect(cluster.machines[3])

        def body():
            for key in KEYS[:8]:
                yield from client.get(key)

        sim.process(body())
        sim.run(until=500.0)
        assert sum(m.gets.value for m in service.metrics.shards.values()) == 8
        assert service.metrics.total_operations() == 8


class TestFailover:
    def run_with_kill(self, windows=1500.0, kill_at=400.0):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        shard_tracers = {f"shard{i}": Tracer(sim, capacity=1) for i in range(3)}
        rfp_config = RfpConfig(consecutive_slow_calls=1)
        checkers = {
            name: RfpInvariantChecker(config=rfp_config).attach(tracer)
            for name, tracer in shard_tracers.items()
        }
        cluster_tracer = Tracer(sim, categories=["cluster"])
        cluster_checker = ClusterInvariantChecker().attach(cluster_tracer)
        service = RfpCluster(
            sim,
            cluster,
            shards=3,
            rfp_config=rfp_config,
            cost_model=StoreCostModel(jitter_probability=0.0),
            cluster_config=ClusterConfig(replication_factor=2),
            tracer=cluster_tracer,
            shard_tracers=shard_tracers,
        )
        service.preload([(key, b"v" * 32) for key in KEYS])
        acked = {}
        completed = []

        def body(client, my_keys, client_id):
            sequence = 0
            while True:
                key = my_keys[sequence % len(my_keys)]
                if sequence % 3 == 2:
                    sequence += 1
                    yield from client.put(key, b"w%04d" % sequence)
                    acked[key] = sequence
                else:
                    sequence += 1
                    yield from client.get(key)
                completed.append(sim.now)

        for index in range(4):
            client = service.connect(cluster.machines[3 + index], name=f"c{index}")
            sim.process(body(client, KEYS[index::4], index))
        sim.schedule(kill_at, service.kill, "shard1")
        sim.run(until=windows)
        return sim, service, cluster_checker, checkers, acked, completed

    def test_kill_triggers_single_failover(self):
        _, service, _, _, _, _ = self.run_with_kill()
        assert [event.shard for event in service.failover.events] == ["shard1"]
        assert service.membership.status("shard1") is ShardStatus.DEAD
        assert service.ring.nodes == ["shard0", "shard2"]

    def test_operations_continue_after_failover(self):
        _, service, _, _, _, completed = self.run_with_kill()
        failover_at = service.failover.last_failover_at_us
        assert failover_at is not None
        after = [at for at in completed if at > failover_at + 100.0]
        assert len(after) > 50

    def test_cluster_invariants_clean(self):
        _, _, cluster_checker, checkers, _, _ = self.run_with_kill()
        cluster_checker.assert_clean()
        assert cluster_checker.events_checked > 0
        for checker in checkers.values():
            checker.assert_clean()

    def test_healthy_shards_stay_inbound_only(self):
        _, service, _, checkers, _, _ = self.run_with_kill()
        for name in ("shard0", "shard2"):
            server = service.shards[name].jakiro.server
            assert server.machine.rnic.outbound_ops == 0
            checkers[name].check_nic_accounting(
                server, expect_inbound_only=True, strict_inbound=False
            )
            checkers[name].assert_clean()

    def test_stuck_calls_degrade_via_hybrid_rule(self):
        """Calls stranded on the dead shard burn their fetch retries and
        switch to server-reply — the §3.2 path, not an ad-hoc abort."""
        _, service, _, checkers, _, _ = self.run_with_kill()
        dead = service.shards["shard1"].jakiro.server
        assert dead.halted
        switched = [
            transport.mode.name
            for client in service._clients
            for transport in client.shard_client("shard1").transports
            if transport.mode.name == "SERVER_REPLY"
        ]
        assert switched  # at least the in-flight calls degraded
        checkers["shard1"].assert_clean()

    def test_no_acknowledged_write_lost(self):
        _, service, _, _, acked, _ = self.run_with_kill()
        assert acked
        for key, sequence in acked.items():
            survivors = service.ring.lookup_replicas(key, 2)
            values = [service.peek(name, key) for name in survivors]
            best = max(
                int(value[1:].decode()) if value and value[:1] == b"w" else 0
                for value in values
            )
            assert best >= sequence

    def test_killing_twice_rejected(self):
        _, service, _, _, _, _ = self.run_with_kill()
        with pytest.raises(ClusterError):
            service.kill("shard1")


class TestAdaptive:
    def test_per_shard_fetch_size_diverges(self):
        """A shard serving 512 B values settles on a larger F than a shard
        serving 64 B values — the per-shard half of §3.2.

        (512 B, not 1 KB: past H ≈ 1 KB Eq. 2's half-credit scoring
        correctly prefers a small first fetch plus a remainder read over
        one bandwidth-bound large fetch.)
        """
        sim, cluster, _, service = make_service(shards=2, replication_factor=1)
        small, large = [], []
        for key in (f"key{i:04d}".encode() for i in range(200)):
            if service.ring.lookup(key) == "shard0":
                small.append(key)
                service.preload([(key, b"s" * 64)])
            else:
                large.append(key)
                service.preload([(key, b"L" * 512)])
        assert small and large
        clients = [service.connect(cluster.machines[m]) for m in (2, 3)]
        service.start_adaptive(interval_us=100.0, min_samples=16)

        def body(client, keys):
            index = 0
            while True:
                yield from client.get(keys[index % len(keys)])
                index += 1

        for client in clients:
            sim.process(body(client, small))
            sim.process(body(client, large))
        sim.run(until=1200.0)
        f_small = service.adaptive["shard0"].current_parameters[1]
        f_large = service.adaptive["shard1"].current_parameters[1]
        assert f_large >= 512
        assert f_small < f_large

    def test_start_adaptive_requires_clients(self):
        _, _, _, service = make_service(shards=2)
        with pytest.raises(ClusterError):
            service.start_adaptive()
