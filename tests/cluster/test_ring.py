"""Unit tests for the consistent-hash ring."""

import pytest

from repro.cluster import HashRing
from repro.errors import ClusterError


def keys(count):
    return [f"key{i:05d}".encode() for i in range(count)]


class TestConstruction:
    def test_empty_ring_rejects_lookup(self):
        ring = HashRing()
        with pytest.raises(ClusterError):
            ring.lookup(b"k")

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ClusterError):
            HashRing(["a"], vnodes=0)

    def test_nodes_sorted_and_contains(self):
        ring = HashRing(["b", "a", "c"])
        assert ring.nodes == ["a", "b", "c"]
        assert "b" in ring
        assert "z" not in ring
        assert len(ring) == 3

    def test_duplicate_node_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ClusterError):
            ring.add_node("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(ClusterError):
            HashRing(["a"]).remove_node("b")


class TestLookup:
    def test_deterministic(self):
        first = HashRing(["a", "b", "c"])
        second = HashRing(["c", "a", "b"])  # insertion order is irrelevant
        for key in keys(200):
            assert first.lookup(key) == second.lookup(key)

    def test_single_node_gets_everything(self):
        ring = HashRing(["only"])
        assert all(ring.lookup(key) == "only" for key in keys(50))

    def test_replicas_distinct_and_primary_first(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        for key in keys(100):
            replicas = ring.lookup_replicas(key, 2)
            assert len(replicas) == 2
            assert len(set(replicas)) == 2
            assert replicas[0] == ring.lookup(key)

    def test_replica_count_clamped_to_ring_size(self):
        ring = HashRing(["a", "b"])
        assert sorted(ring.lookup_replicas(b"k", 5)) == ["a", "b"]

    def test_replica_count_must_be_positive(self):
        with pytest.raises(ClusterError):
            HashRing(["a"]).lookup_replicas(b"k", 0)


class TestMembershipChanges:
    def test_removal_reroutes_to_prior_replica(self):
        """The failover mechanism: dropping a node sends each of its keys
        to exactly the node that already held the key's second replica."""
        ring = HashRing(["a", "b", "c"], vnodes=128)
        expectations = {
            key: ring.lookup_replicas(key, 2)
            for key in keys(300)
            if ring.lookup(key) == "b"
        }
        ring.remove_node("b")
        for key, (_, backup) in expectations.items():
            assert ring.lookup(key) == backup

    def test_add_then_remove_is_identity(self):
        ring = HashRing(["a", "b"], vnodes=64)
        before = {key: ring.lookup(key) for key in keys(200)}
        ring.add_node("c")
        ring.remove_node("c")
        assert {key: ring.lookup(key) for key in keys(200)} == before

    def test_load_counts_accounts_every_key(self):
        ring = HashRing(["a", "b", "c"], vnodes=128)
        counts = ring.load_counts(keys(300))
        assert sum(counts.values()) == 300
        assert set(counts) == {"a", "b", "c"}
