"""Property: one vnode move remaps exactly that vnode's range.

The remap-minimality the ring already guarantees for whole-shard
membership (property suite) must hold for vnode surgery too — it is
what makes live rebalancing safe to reason about: moving one token
changes the primary of precisely the keys hashing into that token's
range, from the token's old owner to its new one, and *nothing else*.
Moving the token back restores the ring's token table exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import HashRing

KEYS = [b"key%05d" % i for i in range(400)]

node_counts = st.integers(min_value=2, max_value=5)
vnode_counts = st.sampled_from([8, 32, 64])
picks = st.integers(min_value=0, max_value=2**31 - 1)


def build(node_count, vnodes):
    return HashRing([f"s{i}" for i in range(node_count)], vnodes=vnodes)


class TestSingleMoveMinimality:
    @settings(max_examples=40, deadline=None)
    @given(node_counts, vnode_counts, picks)
    def test_only_the_moved_range_changes_primary(self, node_count, vnodes, pick):
        ring = build(node_count, vnodes)
        tokens = [token for token, _ in ring._tokens]
        token = tokens[pick % len(tokens)]
        donor = ring.owner_of(token)
        others = sorted(set(ring.nodes) - {donor})
        recipient = others[pick % len(others)]
        before = {key: ring.lookup(key) for key in KEYS}
        before_token = {key: ring.token_of(key) for key in KEYS}

        moved = ring.with_vnodes_moved({token: recipient})
        for key in KEYS:
            after = moved.lookup(key)
            if before_token[key] == token:
                # Every key of the moved range came from the donor and
                # lands on the recipient — nowhere else.
                assert before[key] == donor
                assert after == recipient
            else:
                assert after == before[key], key
            # The owning token itself never changes: surgery reassigns
            # ownership, not the circle's geometry.
            assert moved.token_of(key) == before_token[key]

    @settings(max_examples=40, deadline=None)
    @given(node_counts, vnode_counts, picks)
    def test_moving_back_restores_the_ring_exactly(self, node_count, vnodes, pick):
        ring = build(node_count, vnodes)
        tokens = [token for token, _ in ring._tokens]
        token = tokens[pick % len(tokens)]
        donor = ring.owner_of(token)
        others = sorted(set(ring.nodes) - {donor})
        recipient = others[pick % len(others)]
        moved = ring.with_vnodes_moved({token: recipient})
        assert moved.owner_of(token) == recipient
        assert ring.owner_of(token) == donor  # the original is untouched
        restored = moved.with_vnodes_moved({token: donor})
        assert restored._tokens == ring._tokens
        for key in KEYS:
            assert restored.lookup(key) == ring.lookup(key)

    @settings(max_examples=25, deadline=None)
    @given(node_counts, vnode_counts, picks)
    def test_in_place_move_matches_the_copy(self, node_count, vnodes, pick):
        """``move_vnode`` (the cutover primitive, with its caches) and
        ``with_vnodes_moved`` (the planning copy) agree exactly."""
        ring = build(node_count, vnodes)
        tokens = [token for token, _ in ring._tokens]
        token = tokens[pick % len(tokens)]
        donor = ring.owner_of(token)
        others = sorted(set(ring.nodes) - {donor})
        recipient = others[pick % len(others)]
        copy = ring.with_vnodes_moved({token: recipient})
        # Warm the caches first so the move must invalidate them.
        for key in KEYS[:50]:
            ring.lookup(key)
            ring.token_of(key)
        ring.move_vnode(token, recipient)
        assert ring._tokens == copy._tokens
        for key in KEYS:
            assert ring.lookup(key) == copy.lookup(key)
            assert ring.token_of(key) == copy.token_of(key)
