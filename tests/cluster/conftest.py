"""Cluster-suite pytest wiring: always-on invariant gating + fault plans.

Two fixtures turn every cluster test into an invariant certificate:

- ``cluster_invariants`` — factory returning
  ``attach(tracer, **kwargs) -> ClusterInvariantChecker``.  Unlike the
  root ``rfp_invariants`` fixture (opt-in via ``--rfp-invariants``,
  because RFP protocol events are per-fetch and costly), cluster events
  are rare — routes, status transitions, transfers — so the cluster
  checker runs *unconditionally*: every attached checker is asserted
  clean at teardown, making the tier-1 run gate on the cluster
  invariants by default.
- ``fault_plan`` — factory returning an armed
  :class:`repro.cluster.FaultPlan`, the deterministic crash/rejoin
  schedule shared by the unit tests, the property tests, and the
  ``ext-cluster-rejoin`` benchmark.  Tests that expect a *dirty* trace
  (planted-bug tests) build their own checker instead of using the
  fixtures.
"""

import pytest

from repro.cluster import Fault, FaultPlan
from repro.lint.invariants import ClusterInvariantChecker


@pytest.fixture
def cluster_invariants():
    """Factory fixture: ``attach(tracer, **kwargs) -> checker``.

    Always enabled; every checker attached through the factory is
    asserted clean when the test finishes — and audited for leaked
    transaction lock leases, the lock-table analogue of the
    ``Membership.unsubscribe`` listener audit: a test that opens a
    transaction must see it commit or abort before the window closes.
    """
    checkers = []

    def attach(tracer, **kwargs):
        checker = ClusterInvariantChecker(**kwargs).attach(tracer)
        checkers.append(checker)
        return checker

    yield attach
    for checker in checkers:
        checker.assert_clean()
        checker.assert_no_leaked_leases()


@pytest.fixture
def fault_plan():
    """Factory fixture: build and arm a deterministic fault schedule.

    ``make(sim, service, faults, recovery_config=None) -> FaultPlan``
    where ``faults`` is a list of ``(at_us, action, shard)`` tuples.
    """

    def make(sim, service, faults, recovery_config=None):
        plan = FaultPlan([Fault(at, action, shard) for at, action, shard in faults])
        plan.arm(sim, service, recovery_config=recovery_config)
        return plan

    return make
