"""Unit tests for heartbeat/lease failure detection."""

import pytest

from repro.cluster import Membership, ShardStatus
from repro.errors import ClusterError
from repro.sim import Simulator, Tracer


def make_membership(**kwargs):
    sim = Simulator()
    tracer = Tracer(sim, categories=["cluster"])
    membership = Membership(sim, tracer=tracer, **kwargs)
    return sim, tracer, membership


def drive(sim, membership, node, beat_every_us, stop_at_us, until_us):
    def beats():
        while sim.now < stop_at_us:
            membership.beat(node)
            yield sim.timeout(beat_every_us)

    membership.start()
    sim.process(beats())
    sim.run(until=until_us)


class TestWiring:
    def test_lease_must_exceed_heartbeat(self):
        with pytest.raises(ClusterError):
            make_membership(heartbeat_interval_us=20.0, lease_timeout_us=20.0)

    def test_double_register_rejected(self):
        _, _, membership = make_membership()
        membership.register("s0")
        with pytest.raises(ClusterError):
            membership.register("s0")

    def test_unknown_shard_rejected(self):
        _, _, membership = make_membership()
        with pytest.raises(ClusterError):
            membership.status("ghost")


class TestDetection:
    def test_beating_shard_stays_healthy(self):
        sim, _, membership = make_membership(
            heartbeat_interval_us=20.0, lease_timeout_us=60.0
        )
        membership.register("s0")
        drive(sim, membership, "s0", 20.0, stop_at_us=1000.0, until_us=500.0)
        assert membership.status("s0") is ShardStatus.HEALTHY
        assert membership.is_routable("s0")

    def test_silent_shard_declared_dead_after_lease(self):
        sim, tracer, membership = make_membership(
            heartbeat_interval_us=20.0, lease_timeout_us=60.0
        )
        membership.register("s0")
        drive(sim, membership, "s0", 20.0, stop_at_us=200.0, until_us=500.0)
        assert membership.status("s0") is ShardStatus.DEAD
        (death,) = tracer.events(label="dead")
        # Last beat at t=180, lease 60 -> dead on the first detector tick
        # after t=240.
        assert 240.0 <= death.at_us <= 280.0

    def test_suspect_heals_on_next_beat(self):
        sim, tracer, membership = make_membership()
        membership.register("s0")
        membership.report_suspect("s0", reason="op timed out")
        assert membership.status("s0") is ShardStatus.SUSPECT
        assert not membership.is_routable("s0")
        membership.beat("s0")
        assert membership.status("s0") is ShardStatus.HEALTHY
        assert [e.label for e in tracer.events()] == ["suspect", "recovered"]

    def test_dead_is_sticky(self):
        _, _, membership = make_membership()
        membership.register("s0")
        membership.mark_dead("s0", reason="killed")
        membership.beat("s0")
        membership.report_suspect("s0")
        assert membership.status("s0") is ShardStatus.DEAD

    def test_suspect_only_from_healthy(self):
        _, tracer, membership = make_membership()
        membership.register("s0")
        membership.report_suspect("s0")
        membership.report_suspect("s0")  # second report is a no-op
        assert len(tracer.events(label="suspect")) == 1

    def test_listeners_see_transitions(self):
        _, _, membership = make_membership()
        membership.register("s0")
        seen = []
        membership.subscribe(lambda node, status: seen.append((node, status)))
        membership.report_suspect("s0")
        membership.mark_dead("s0")
        assert seen == [
            ("s0", ShardStatus.SUSPECT),
            ("s0", ShardStatus.DEAD),
        ]

    def test_healthy_nodes_sorted(self):
        _, _, membership = make_membership()
        for name in ("s2", "s0", "s1"):
            membership.register(name)
        membership.mark_dead("s1")
        assert membership.healthy_nodes() == ["s0", "s2"]
