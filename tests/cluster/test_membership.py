"""Unit tests for heartbeat/lease failure detection."""

import pytest

from repro.cluster import Membership, ShardStatus
from repro.errors import ClusterError
from repro.sim import Simulator, Tracer


def make_membership(**kwargs):
    sim = Simulator()
    tracer = Tracer(sim, categories=["cluster"])
    membership = Membership(sim, tracer=tracer, **kwargs)
    return sim, tracer, membership


def drive(sim, membership, node, beat_every_us, stop_at_us, until_us):
    def beats():
        while sim.now < stop_at_us:
            membership.beat(node)
            yield sim.timeout(beat_every_us)

    membership.start()
    sim.process(beats())
    sim.run(until=until_us)


class TestWiring:
    def test_lease_must_exceed_heartbeat(self):
        with pytest.raises(ClusterError):
            make_membership(heartbeat_interval_us=20.0, lease_timeout_us=20.0)

    def test_double_register_rejected(self):
        _, _, membership = make_membership()
        membership.register("s0")
        with pytest.raises(ClusterError):
            membership.register("s0")

    def test_unknown_shard_rejected(self):
        _, _, membership = make_membership()
        with pytest.raises(ClusterError):
            membership.status("ghost")


class TestDetection:
    def test_beating_shard_stays_healthy(self):
        sim, _, membership = make_membership(
            heartbeat_interval_us=20.0, lease_timeout_us=60.0
        )
        membership.register("s0")
        drive(sim, membership, "s0", 20.0, stop_at_us=1000.0, until_us=500.0)
        assert membership.status("s0") is ShardStatus.HEALTHY
        assert membership.is_routable("s0")

    def test_silent_shard_declared_dead_after_lease(self):
        sim, tracer, membership = make_membership(
            heartbeat_interval_us=20.0, lease_timeout_us=60.0
        )
        membership.register("s0")
        drive(sim, membership, "s0", 20.0, stop_at_us=200.0, until_us=500.0)
        assert membership.status("s0") is ShardStatus.DEAD
        (death,) = tracer.events(label="dead")
        # Last beat at t=180, lease 60 -> dead on the first detector tick
        # after t=240.
        assert 240.0 <= death.at_us <= 280.0

    def test_suspect_heals_on_next_beat(self):
        sim, tracer, membership = make_membership()
        membership.register("s0")
        membership.report_suspect("s0", reason="op timed out")
        assert membership.status("s0") is ShardStatus.SUSPECT
        assert not membership.is_routable("s0")
        membership.beat("s0")
        assert membership.status("s0") is ShardStatus.HEALTHY
        assert [e.label for e in tracer.events()] == ["suspect", "recovered"]

    def test_dead_is_sticky(self):
        _, _, membership = make_membership()
        membership.register("s0")
        membership.mark_dead("s0", reason="killed")
        membership.beat("s0")
        membership.report_suspect("s0")
        assert membership.status("s0") is ShardStatus.DEAD

    def test_suspect_only_from_healthy(self):
        _, tracer, membership = make_membership()
        membership.register("s0")
        membership.report_suspect("s0")
        membership.report_suspect("s0")  # second report is a no-op
        assert len(tracer.events(label="suspect")) == 1

    def test_listeners_see_transitions(self):
        _, _, membership = make_membership()
        membership.register("s0")
        seen = []
        membership.subscribe(lambda node, status: seen.append((node, status)))
        membership.report_suspect("s0")
        membership.mark_dead("s0")
        assert seen == [
            ("s0", ShardStatus.SUSPECT),
            ("s0", ShardStatus.DEAD),
        ]

    def test_healthy_nodes_sorted(self):
        _, _, membership = make_membership()
        for name in ("s2", "s0", "s1"):
            membership.register(name)
        membership.mark_dead("s1")
        assert membership.healthy_nodes() == ["s0", "s2"]


class TestRejoin:
    """DEAD -> RECOVERING -> HEALTHY without weakening lease semantics."""

    def test_rejoin_only_from_dead(self):
        _, _, membership = make_membership()
        membership.register("s0")
        with pytest.raises(ClusterError, match="only DEAD shards rejoin"):
            membership.rejoin("s0")
        membership.report_suspect("s0")
        with pytest.raises(ClusterError, match="only DEAD shards rejoin"):
            membership.rejoin("s0")
        membership.mark_dead("s0")
        membership.rejoin("s0", reason="repaired")
        assert membership.status("s0") is ShardStatus.RECOVERING

    def test_recovering_is_not_routable(self):
        _, _, membership = make_membership()
        membership.register("s0")
        membership.mark_dead("s0")
        membership.rejoin("s0")
        assert not membership.is_routable("s0")
        assert membership.healthy_nodes() == []

    def test_promote_only_from_recovering(self):
        _, _, membership = make_membership()
        membership.register("s0")
        with pytest.raises(ClusterError, match="only RECOVERING shards promote"):
            membership.promote("s0")
        membership.mark_dead("s0")
        with pytest.raises(ClusterError, match="only RECOVERING shards promote"):
            membership.promote("s0")
        membership.rejoin("s0")
        membership.promote("s0")
        assert membership.status("s0") is ShardStatus.HEALTHY
        assert membership.is_routable("s0")

    def test_promotion_is_silent_but_notifies_listeners(self):
        """The coordinator traces the paired ``handoff`` instead; the
        membership itself records no ``recovered`` event on promotion."""
        _, tracer, membership = make_membership()
        membership.register("s0")
        membership.mark_dead("s0")
        membership.rejoin("s0")
        seen = []
        membership.subscribe(lambda node, status: seen.append((node, status)))
        membership.promote("s0")
        assert seen == [("s0", ShardStatus.HEALTHY)]
        assert tracer.events(label="recovered") == []

    def test_beat_refreshes_recovering_lease_without_transition(self):
        sim, tracer, membership = make_membership(
            heartbeat_interval_us=20.0, lease_timeout_us=60.0
        )
        membership.register("s0")
        membership.mark_dead("s0")
        membership.rejoin("s0")
        drive(sim, membership, "s0", 20.0, stop_at_us=1000.0, until_us=500.0)
        # Beats kept the lease alive but never changed the status.
        assert membership.status("s0") is ShardStatus.RECOVERING
        assert len(tracer.events(label="rejoin")) == 1
        assert tracer.events(label="recovered") == []

    def test_recovering_lease_expiry_redeclares_dead(self):
        """A shard that goes silent mid-recovery falls back to DEAD —
        the rejoin path does not weaken the failure detector."""
        sim, tracer, membership = make_membership(
            heartbeat_interval_us=20.0, lease_timeout_us=60.0
        )
        membership.register("s0")
        membership.mark_dead("s0")
        membership.rejoin("s0")
        membership.start()
        sim.run(until=500.0)  # no beats at all after the rejoin
        assert membership.status("s0") is ShardStatus.DEAD
        redeclared = tracer.events(label="dead", since_us=1.0)
        assert len(redeclared) == 1
        assert "lease expired" in redeclared[0].data["reason"]

    def test_dead_still_sticky_after_rejoin_cycle(self):
        """Regression: adding the rejoin exit from DEAD must not let
        beats or suspect reports resurrect a dead shard."""
        _, _, membership = make_membership()
        membership.register("s0")
        membership.mark_dead("s0")
        membership.rejoin("s0")
        membership.promote("s0")
        membership.mark_dead("s0", reason="second crash")
        membership.beat("s0")
        membership.report_suspect("s0")
        assert membership.status("s0") is ShardStatus.DEAD
