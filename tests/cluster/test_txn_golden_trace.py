"""Golden traces for the transaction layer: commit and mid-lock abort.

Two seeded scenarios pin the ``txn_*`` trace stream byte-for-byte, the
way ``test_golden_trace.py`` pins the failover stream: a two-shard
commit (begin, two ordered locks, the atomic commit) and a mid-lock
abort (first lock granted, second primary dead, attempts exhausted,
abort releases).  Each must be identical under the fast engine, the
reference engine, and against the checked-in fixture.

Regenerate (after an *intentional* model change) with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/cluster/test_txn_golden_trace.py
"""

import os

import pytest

from repro.cluster import ClusterConfig, RfpCluster, TxnConfig
from repro.core.config import RfpConfig
from repro.errors import ClusterError
from repro.hw.cluster import build_cluster
from repro.hw.specs import CLUSTER_EUROSYS17
from repro.kv.store import StoreCostModel
from repro.lint.invariants import ClusterInvariantChecker
from repro.sim.core import Simulator
from repro.sim.trace import Tracer

SHARDS = 3
WINDOW_US = 250.0

SCENARIOS = ("commit", "abort")


def fixture_path(scenario):
    return os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "fixtures",
        f"golden_txn_{scenario}.txt",
    )


def txn_keys(service):
    """Two ascending keys with distinct primaries — a genuinely
    distributed transaction."""
    keys, primaries = [], set()
    index = 0
    while len(keys) < 2:
        key = b"goldtxn%03d" % index
        index += 1
        primary = service.ring.lookup(key)
        if primary not in primaries:
            primaries.add(primary)
            keys.append(key)
    return keys


def run_traced(scenario, reference):
    """One seeded transaction run; returns (trace lines, dispatched)."""
    sim = Simulator(reference=reference)
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    tracer = Tracer(sim)
    ClusterInvariantChecker().attach(tracer)
    service = RfpCluster(
        sim,
        cluster,
        shards=SHARDS,
        rfp_config=RfpConfig(consecutive_slow_calls=1),
        cost_model=StoreCostModel(jitter_probability=0.0),
        cluster_config=ClusterConfig(replication_factor=2),
        # Short lock budget so the abort scenario gives up before the
        # failover re-points the dead primary (which would commit).
        txn_config=TxnConfig(lock_attempts=2, lock_retry_us=5.0),
        tracer=tracer,
        shard_tracers={f"shard{i}": tracer for i in range(SHARDS)},
    )
    keys = txn_keys(service)
    service.preload([(key, b"\x00" * 8) for key in keys])
    client = service.connect(cluster.machines[4], name="c0")
    if scenario == "abort":
        sim.schedule(1.0, service.kill, service.ring.lookup(keys[1]))

    def body():
        yield sim.timeout(5.0)
        yield from client.get(keys[0])
        try:
            yield from client.multi_put([(key, b"txnvalue") for key in keys])
        except ClusterError:
            assert scenario == "abort"
        yield from client.get(keys[0])

    sim.process(body())
    sim.run(until=WINDOW_US)
    lines = [
        f"{event.at_us!r} {event.category} {event.label}"
        for event in tracer.events()
    ]
    return lines, sim.dispatched


class TestTxnGoldenTraces:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_fast_engine_matches_fixture(self, scenario):
        lines, _ = run_traced(scenario, reference=False)
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            with open(fixture_path(scenario), "w", encoding="utf-8") as sink:
                sink.write("\n".join(lines) + "\n")
        with open(fixture_path(scenario), encoding="utf-8") as source:
            golden = source.read().splitlines()
        assert len(lines) >= 6, "scenario too quiet to pin anything"
        assert lines == golden

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_reference_engine_matches_fixture(self, scenario):
        lines, _ = run_traced(scenario, reference=True)
        with open(fixture_path(scenario), encoding="utf-8") as source:
            golden = source.read().splitlines()
        assert lines == golden

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_engines_dispatch_identically(self, scenario):
        fast_lines, fast_dispatched = run_traced(scenario, reference=False)
        ref_lines, ref_dispatched = run_traced(scenario, reference=True)
        assert fast_lines == ref_lines
        assert fast_dispatched == ref_dispatched
