"""The FIFO queue, built twice: one-sided verbs vs RFP-style RPC.

Unit coverage for :mod:`repro.cluster.structures`: FIFO order, the
legal empty-``None`` outcome, bounds (item size, single-epoch slot
ring), host-side verification helpers, and — the paper's axis — the
cost asymmetry: the one-sided build posts ~3 verbs per op and *nothing*
out-bound on the host NIC (the bypass claim), while the RPC build is
exactly one request per op and keeps the server in-bound-only under the
§3.2 hybrid rule.  Contention amplification (lost CAS races, ready-word
polling) is asserted here qualitatively; ``ext-txn-structures`` pins
the resulting crossover quantitatively.
"""

import pytest

from repro.cluster import OneSidedQueue, QueueRegion, RfpQueue
from repro.errors import KVError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator


def make_rig():
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    return sim, cluster


def drive(sim, gen, until=5_000.0):
    """Run one process body to completion; returns its return value."""
    box = {}

    def wrapper():
        box["value"] = yield from gen

    sim.process(wrapper())
    sim.run(until=until)
    return box.get("value")


class TestOneSidedQueue:
    def test_fifo_order_and_empty(self):
        sim, cluster = make_rig()
        host = QueueRegion(sim, cluster, capacity=16, max_item_bytes=16)
        q = host.connect(cluster.machines[1])

        def body():
            for item in (b"a", b"b", b"c"):
                yield from q.enqueue(item)
            out = []
            for _ in range(4):
                out.append((yield from q.dequeue()))
            return out

        assert drive(sim, body()) == [b"a", b"b", b"c", None]
        assert q.stats.enqueues.value == 3
        assert q.stats.dequeues.value == 3
        assert q.stats.empties.value == 1
        assert host.snapshot() == (3, 3)

    def test_host_cpu_and_nic_stay_bypassed(self):
        """The server-bypass claim: the host posts nothing — every op is
        client verbs served by the host NIC's in-bound engine."""
        sim, cluster = make_rig()
        host = QueueRegion(sim, cluster, capacity=16, max_item_bytes=16)
        q = host.connect(cluster.machines[1])

        def body():
            yield from q.enqueue(b"x")
            yield from q.dequeue()

        drive(sim, body())
        assert host.machine.rnic.outbound_ops == 0
        assert host.machine.rnic.inbound_ops == q.stats.remote_ops.value
        # 3 verbs per enqueue (FAA, payload, ready) + 3 per uncontended
        # dequeue (header read, CAS, slot read).
        assert q.stats.remote_ops.value == 6

    def test_item_size_and_slot_ring_bounds(self):
        sim, cluster = make_rig()
        host = QueueRegion(sim, cluster, capacity=2, max_item_bytes=8)
        q = host.connect(cluster.machines[1])
        with pytest.raises(KVError, match="> 8 B"):
            next(q.enqueue(b"toolongtoolong"))

        errors = []

        def exhaust():
            try:
                yield from q.enqueue(b"a")
                yield from q.enqueue(b"b")
                yield from q.enqueue(b"c")  # claim 2 on a 2-slot ring
            except KVError as exc:
                errors.append(exc)

        sim.process(exhaust())
        sim.run(until=100.0)
        assert errors and "slot ring exhausted" in str(errors[0])

    def test_peek_slot_sees_published_items_only(self):
        sim, cluster = make_rig()
        host = QueueRegion(sim, cluster, capacity=4, max_item_bytes=8)
        q = host.connect(cluster.machines[1])
        assert host.peek_slot(0) is None
        drive(sim, q.enqueue(b"hi"))
        assert host.peek_slot(0) == b"hi"
        assert host.peek_slot(1) is None

    def test_contention_amplifies_remote_ops(self):
        """Racing dequeuers lose CAS claims and re-read the header —
        the per-op verb count climbs above the uncontended 3, the very
        amplification the RPC build never pays."""
        sim, cluster = make_rig()
        host = QueueRegion(sim, cluster, capacity=256, max_item_bytes=8)
        producers = [host.connect(cluster.machines[1 + i]) for i in range(3)]
        consumers = [host.connect(cluster.machines[4 + i]) for i in range(3)]

        def produce(q, salt):
            for item_no in range(16):
                yield from q.enqueue(b"%d:%02d" % (salt, item_no))

        def consume(q, want):
            got = 0
            while got < want:
                value = yield from q.dequeue()
                if value is None:
                    yield sim.timeout(1.0)
                else:
                    got += 1

        for salt, q in enumerate(producers):
            sim.process(produce(q, salt))
        for q in consumers:
            sim.process(consume(q, 16))
        sim.run(until=20_000.0)

        total_ops = sum(q.stats.ops for q in producers + consumers)
        total_remote = sum(q.stats.remote_ops.value for q in producers + consumers)
        retries = sum(q.stats.cas_retries.value for q in consumers)
        assert sum(q.stats.dequeues.value for q in consumers) == 48
        assert retries > 0, "three racing consumers never lost a CAS?"
        assert total_remote / total_ops > 3.0


class TestRfpQueue:
    def test_fifo_order_and_empty(self):
        sim, cluster = make_rig()
        queue = RfpQueue(sim, cluster, machine=cluster.machines[0])
        q = queue.connect(cluster.machines[1])

        def body():
            for item in (b"a", b"b", b"c"):
                yield from q.enqueue(item)
            out = []
            for _ in range(4):
                out.append((yield from q.dequeue()))
            return out

        assert drive(sim, body()) == [b"a", b"b", b"c", None]
        assert q.stats.enqueues.value == 3
        assert q.stats.dequeues.value == 3
        assert q.stats.empties.value == 1
        assert len(queue.items) == 0

    def test_one_rpc_per_op_server_inbound_only(self):
        """The RFP claims: exactly one request per op, and under the
        hybrid rule a promptly-responding server posts no out-bound
        verbs — responses ride the clients' in-bound fetches."""
        sim, cluster = make_rig()
        queue = RfpQueue(sim, cluster, machine=cluster.machines[0])
        clients = [queue.connect(cluster.machines[1 + i]) for i in range(3)]

        def body(q, salt):
            for item_no in range(8):
                yield from q.enqueue(b"%d:%02d" % (salt, item_no))
            for _ in range(8):
                yield from q.dequeue()

        for salt, q in enumerate(clients):
            sim.process(body(q, salt))
        sim.run(until=20_000.0)

        for q in clients:
            assert q.stats.ops == 16
            assert q.stats.remote_ops.value == 16  # 1 RPC per op, always
            assert q.stats.cas_retries.value == 0
            assert q.stats.ready_polls.value == 0
        assert queue.server.machine.rnic.outbound_ops == 0

    def test_remote_ops_per_op_is_flat_under_contention(self):
        """The structural contrast with the one-sided build: adding
        contenders cannot change the RPC build's cost per op."""
        sim, cluster = make_rig()
        queue = RfpQueue(sim, cluster, machine=cluster.machines[0])
        clients = [queue.connect(cluster.machines[1 + i]) for i in range(6)]

        def body(q):
            for item_no in range(8):
                yield from q.enqueue(b"%02d" % item_no)
                yield from q.dequeue()

        for q in clients:
            sim.process(body(q))
        sim.run(until=40_000.0)
        for q in clients:
            assert q.stats.ops == 16
            assert q.stats.remote_ops_per_op() == 1.0
