"""Live vnode migration & load-aware rebalancing on the shared engine.

The unified :mod:`repro.cluster.migration` engine is already exercised
end-to-end through its recovery client (``test_recovery.py``); this
suite covers the second client: :class:`VnodeMigration` moving tokens
between *healthy* shards under live traffic, the
:class:`RebalanceController` that decides which tokens to move, and the
planted-bug fixture proving the rebalance trace invariants catch a
cutover that would leave keys unroutable mid-move.
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    RebalanceConfig,
    RfpCluster,
)
from repro.cluster.migration import (
    MigrationConfig,
    RangeMigration,
    RebalanceController,
)
from repro.core.config import RfpConfig
from repro.errors import ClusterError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.kv.store import StoreCostModel
from repro.sim import Simulator, Tracer

KEYS = [f"key{i:04d}".encode() for i in range(60)]


def make_service(attach_checker=None, shards=3, replication_factor=1):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    tracer = Tracer(sim, categories=["cluster"])
    if attach_checker is not None:
        attach_checker(tracer)
    service = RfpCluster(
        sim,
        cluster,
        shards=shards,
        # No shard dies in most of these tests; a huge slow-call
        # threshold keeps the hybrid rule from degrading the overloaded
        # donor to server-reply (which would post out-bound verbs and
        # muddy the donors-stay-in-bound-only assertions).
        rfp_config=RfpConfig(consecutive_slow_calls=1_000_000),
        cost_model=StoreCostModel(jitter_probability=0.0),
        cluster_config=ClusterConfig(replication_factor=replication_factor),
        tracer=tracer,
    )
    service.preload([(key, b"v" * 32) for key in KEYS])
    return sim, cluster, tracer, service


def pick_move(service):
    """(token, donor, recipient, keys-in-range) for a non-empty vnode."""
    ring = service.ring
    token = ring.token_of(KEYS[0])
    donor = ring.owner_of(token)
    recipient = sorted(name for name in service.shards if name != donor)[0]
    keys = [key for key in KEYS if ring.token_of(key) == token]
    assert keys  # KEYS[0] at minimum
    return token, donor, recipient, keys


def cluster_labels(tracer):
    return [event.label for event in tracer.events()]


class TestVnodeMoveEndToEnd:
    def test_move_relocates_exactly_that_range(self, cluster_invariants):
        sim, _, tracer, service = make_service(cluster_invariants)
        token, donor, recipient, moved_keys = pick_move(service)
        before = {key: service.ring.lookup(key) for key in KEYS}
        migration = service.move_vnodes([token], recipient)
        sim.run(until=2000.0)
        assert not migration.active and not migration.aborted
        assert migration.watermark == migration.target
        assert service.ring.owner_of(token) == recipient
        for key in KEYS:
            expected = recipient if key in moved_keys else before[key]
            assert service.ring.lookup(key) == expected, key
        # The recipient holds every key of the moved range the moment
        # it owns the range.
        for key in moved_keys:
            assert service.peek(recipient, key) is not None
        labels = cluster_labels(tracer)
        assert "migrate_start" in labels
        assert "migrate_batch" in labels
        assert "migrate_cutover" in labels
        assert "migrate_abort" not in labels
        assert labels.index("migrate_start") < labels.index("migrate_batch")
        assert labels.index("migrate_batch") < labels.index("migrate_cutover")
        metrics = service.metrics.shard(recipient)
        assert metrics.rebalanced_vnodes.value == 1

    def test_recipient_pulls_donor_stays_inbound_only(self, cluster_invariants):
        sim, _, _, service = make_service(cluster_invariants)
        token, donor, recipient, _ = pick_move(service)
        migration = service.move_vnodes([token], recipient)
        sim.run(until=2000.0)
        assert not migration.active and not migration.aborted
        assert migration.event.batches >= 1
        # The recipient's only out-bound verbs are its ranged reads;
        # the donor shipped the range without posting a single one.
        assert (
            service.shards[recipient].machine.rnic.outbound_ops
            == migration.event.batches
        )
        assert service.shards[donor].machine.rnic.outbound_ops == 0

    def test_live_writes_forwarded_across_the_move(self, cluster_invariants):
        """A PUT acked mid-stream must be readable from the recipient
        after cutover — forwarding, not the stale donor snapshot, wins."""
        sim, cluster, _, service = make_service(cluster_invariants)
        token, donor, recipient, moved_keys = pick_move(service)
        key = moved_keys[0]
        client = service.connect(cluster.machines[4], name="w")
        acked = []

        def writer():
            sequence = 0
            while True:
                sequence += 1
                value = b"w%04d" % sequence
                yield from client.put(key, value)
                acked.append(value)

        sim.process(writer())
        # A glacial stream so writes land before, during, and after it.
        migration = service.move_vnodes(
            [token], recipient, config=MigrationConfig(batch_keys=1, pace_us=40.0)
        )
        sim.run(until=2000.0)
        assert not migration.active and not migration.aborted
        assert migration.event.catchup_keys >= 1
        assert service.ring.lookup(key) == recipient
        stored = service.peek(recipient, key)
        assert stored is not None and stored >= acked[-1]

    def test_any_membership_transition_aborts(self, cluster_invariants):
        """A vnode move is pure optimization: an unrelated shard dying
        mid-stream aborts it and leaves ownership untouched."""
        sim, _, tracer, service = make_service(cluster_invariants)
        token, donor, recipient, _ = pick_move(service)
        bystander = next(
            name
            for name in sorted(service.shards)
            if name not in (donor, recipient)
        )
        migration = service.move_vnodes(
            [token], recipient, config=MigrationConfig(batch_keys=1, pace_us=300.0)
        )
        sim.schedule(100.0, service.kill, bystander)
        sim.run(until=3000.0)
        assert migration.aborted and not migration.active
        assert service.ring.owner_of(token) == donor
        labels = cluster_labels(tracer)
        assert "migrate_cutover" not in labels
        assert "migrate_abort" in labels
        assert service.metrics.shard(recipient).rebalanced_vnodes.value == 0


class TestMoveValidation:
    def test_refuses_unknown_or_self_moves(self):
        _, _, _, service = make_service()
        token, donor, _, _ = pick_move(service)
        with pytest.raises(ClusterError, match="already owned by"):
            service.move_vnodes([token], donor)
        with pytest.raises(ClusterError, match="at least one token"):
            service.move_vnodes([], donor)

    def test_refuses_concurrent_migrations(self):
        _, _, _, service = make_service()
        token, _, recipient, _ = pick_move(service)
        service.move_vnodes([token], recipient)
        other = service.ring.tokens_of(recipient)[0]
        with pytest.raises(ClusterError, match="already in flight"):
            service.move_vnodes([other], "shard0")

    def test_refuses_unhealthy_recipient(self):
        sim, _, _, service = make_service()
        token, donor, _, _ = pick_move(service)
        bystander = next(
            name for name in sorted(service.shards) if name != donor
        )
        sim.schedule(100.0, service.kill, bystander)
        sim.run(until=1500.0)  # lease expires; failover declares DEAD
        with pytest.raises(ClusterError, match="dead shard"):
            service.move_vnodes([token], bystander)


class TestRebalanceController:
    def test_decide_holds_until_busy_and_skewed(self):
        _, _, _, service = make_service()
        controller = RebalanceController(
            service, RebalanceConfig(min_window_ops=16)
        )
        # Idle window: below min_window_ops.
        assert controller._decide() is None
        # Busy but balanced: no shard clears the threshold.
        for name in service.shards:
            token = service.ring.tokens_of(name)[0]
            for _ in range(20):
                service.metrics.record_op(name, "get", 1.0, token=token)
        assert controller._decide() is None

    def test_decide_picks_hot_vnodes_for_the_coldest_shard(self):
        _, _, _, service = make_service()
        controller = RebalanceController(
            service, RebalanceConfig(min_window_ops=16)
        )
        _, hot, _, _ = pick_move(service)
        hot_tokens = service.ring.tokens_of(hot)[:3]
        for hot_token in hot_tokens:
            for _ in range(30):
                service.metrics.record_op(hot, "get", 1.0, token=hot_token)
        others = sorted(name for name in service.shards if name != hot)
        for _ in range(30):
            service.metrics.record_op(
                others[0], "get", 1.0, token=service.ring.tokens_of(others[0])[0]
            )
        decision = controller._decide()
        assert decision is not None
        decided_hot, tokens, cold = decision
        assert decided_hot == hot
        assert cold == others[1]  # the idle shard, not the warm one
        assert tokens and set(tokens) <= set(hot_tokens)
        # Shedding is bounded by half the hot-cold gap: moving more
        # would just swap which shard is hot.
        shed = sum(
            service.metrics.window_vnode_ops().get(t, 0) for t in tokens
        )
        assert 0 < shed <= (90 - 0) / 2.0

    def test_control_loop_spreads_a_pinned_hot_set(self, cluster_invariants):
        """End to end: clients hammer one shard's keys; the controller
        observes the skew, moves hot vnodes off it live, and the load
        ratio the report exposes drops."""
        sim, cluster, _, service = make_service(cluster_invariants)
        hot = service.ring.lookup(KEYS[0])
        hot_keys = [key for key in KEYS if service.ring.lookup(key) == hot]
        assert len(hot_keys) >= 4

        def reader(client, my_keys):
            index = 0
            while True:
                index += 1
                yield from client.get(my_keys[index % len(my_keys)])

        for i in range(8):
            client = service.connect(cluster.machines[3 + i % 4], name=f"c{i}")
            sim.process(reader(client, hot_keys))
        controller = service.start_rebalancer(
            RebalanceConfig(interval_us=50.0, min_window_ops=32)
        )
        sim.run(until=4000.0)
        controller.stop()
        assert controller.moves >= 1
        assert service.migrations  # the moves are on the public record
        for migration in service.migrations:
            assert not migration.active and not migration.aborted
            assert migration.event.kind == "rebalance"
        # The hot shard shed vnodes; the ring says so.
        moved = sum(len(m.tokens) for m in service.migrations)
        assert moved >= 1
        assert all(m.shard != hot for m in service.migrations)


class TestPlantedBug:
    def test_checker_catches_cutover_below_watermark(self, monkeypatch):
        """Plant the bug the rebalance invariants exist to catch: an
        engine that cuts over without draining the stream flips token
        ownership while the recipient is missing the range's keys —
        every such key is unroutable (a primary that never heard of it)
        the instant placement changes.  The checker, attached to the
        same live trace the clean tests use, must flag the cutover."""
        from repro.lint.invariants import ClusterInvariantChecker

        sim, _, tracer, service = make_service()
        checker = ClusterInvariantChecker().attach(tracer)
        token, _, recipient, moved_keys = pick_move(service)

        def skip_pull(self, donor, keys):
            # The planted bug: claim no keys, install nothing — the
            # watermark never advances, but _run cuts over anyway.
            if False:  # pragma: no cover - never yields
                yield

        monkeypatch.setattr(RangeMigration, "_pull_batch", skip_pull)
        migration = service.move_vnodes([token], recipient)
        sim.run(until=500.0)
        assert not migration.active and not migration.aborted
        assert migration.watermark < migration.target
        # The bug is real: the ring routes the range to a shard that
        # does not hold its keys.
        assert service.ring.lookup(moved_keys[0]) == recipient
        assert service.peek(recipient, moved_keys[0]) is None
        assert not checker.ok
        assert any("below its watermark" in v for v in checker.violations)
