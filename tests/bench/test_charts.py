"""Tests for the terminal bar-chart renderer."""

from repro.bench.charts import render_bars
from repro.bench.figures import ExperimentResult


def make_result(rows, columns=("threads", "jakiro_mops", "reply_mops")):
    return ExperimentResult(
        "figX", "demo", list(columns), rows, paper_expectation="n/a"
    )


class TestRenderBars:
    def test_bars_scale_to_maximum(self):
        result = make_result([[1, 4.0, 2.0], [2, 8.0, 2.0]])
        chart = render_bars(result, width=8)
        lines = chart.splitlines()
        biggest = next(line for line in lines if "8.00" in line)
        half = next(line for line in lines if "4.00" in line)
        assert biggest.count("█") == 8
        assert half.count("█") == 4

    def test_every_row_and_column_present(self):
        result = make_result([[1, 1.0, 2.0], [2, 3.0, 4.0]])
        chart = render_bars(result)
        assert chart.count("threads=") == 2
        assert chart.count("jakiro_mops") == 2
        assert chart.count("reply_mops") == 2

    def test_non_numeric_columns_skipped(self):
        result = ExperimentResult(
            "figY",
            "mixed",
            ["point", "name", "mops"],
            [[1, "alpha", 2.0], [2, "beta", 4.0]],
            paper_expectation="n/a",
        )
        chart = render_bars(result)
        assert "name" not in chart
        assert "mops" in chart

    def test_explicit_column_selection(self):
        result = make_result([[1, 1.0, 2.0]])
        chart = render_bars(result, columns=["reply_mops"])
        assert "jakiro_mops" not in chart
        assert "reply_mops" in chart

    def test_all_text_result_handled(self):
        result = ExperimentResult(
            "figZ", "text", ["a", "b"], [["x", "y"]], paper_expectation="n/a"
        )
        assert "no numeric columns" in render_bars(result)

    def test_partial_blocks_used_for_fractions(self):
        result = make_result([[1, 7.5, 10.0]])
        chart = render_bars(result, width=4)
        # 7.5/10 of 4 cells = 3 cells: three full blocks.
        line = next(l for l in chart.splitlines() if "7.50" in l)
        assert line.count("█") == 3
