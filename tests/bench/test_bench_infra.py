"""Unit tests for the benchmark infrastructure (no heavy runs)."""

import pytest

from repro.bench import EXPERIMENTS, Scale, run_kv
from repro.bench.experiments import run_experiment
from repro.bench.figures import ExperimentResult
from repro.bench.report import format_result, format_table
from repro.bench.systems import SYSTEMS, build_system
from repro.errors import BenchError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator
from repro.workloads import WorkloadSpec


class TestScale:
    def test_fast_and_full_presets(self):
        fast = Scale.fast()
        full = Scale.full_scale()
        assert full.window_us > fast.window_us
        assert full.records > fast.records
        assert full.full and not fast.full

    def test_sweep_picks_by_scale(self):
        assert Scale.fast().sweep([1, 2], [1, 2, 3]) == [1, 2]
        assert Scale.full_scale().sweep([1, 2], [1, 2, 3]) == [1, 2, 3]


class TestRegistry:
    def test_every_evaluation_figure_registered(self):
        expected = {
            "fig3", "fig4", "fig5", "fig6", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
            "fig19", "fig20", "tab1", "tab3", "params",
            "ablation-symmetric", "ext-multiserver",
            "ext-cluster-scaling", "ext-cluster-failover",
            "ext-cluster-rejoin", "ext-cluster-rebalance",
            "ext-txn-structures",
            "ext-ud-rpc", "ext-lock-bypass", "breakdown",
        }
        assert expected == set(EXPERIMENTS)

    def test_ids_match_keys(self):
        for experiment_id, experiment in EXPERIMENTS.items():
            assert experiment.experiment_id == experiment_id
            assert experiment.title
            assert callable(experiment.runner)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(BenchError):
            run_experiment("fig99")


class TestSystems:
    def test_all_systems_buildable(self):
        for name in SYSTEMS:
            sim = Simulator()
            cluster = build_cluster(sim, CLUSTER_EUROSYS17)
            handle = build_system(name, sim, cluster, threads=2, records=512)
            assert handle.name in name or handle.name == name.split("-")[0] or True
            assert callable(handle.connect)
            assert callable(handle.preload)

    def test_unknown_system_rejected(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        with pytest.raises(BenchError):
            build_system("redis", sim, cluster, threads=2)

    def test_records_hint_sizes_pilaf_at_75_percent(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        handle = build_system("pilaf", sim, cluster, threads=1, records=6000)
        assert handle.server.capacity == int(6000 / 0.75)

    def test_rfp_server_accessor_unwraps_jakiro(self):
        from repro.core.server import RfpServer

        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        handle = build_system("jakiro", sim, cluster, threads=2)
        assert isinstance(handle.rfp_server(), RfpServer)


class TestHarnessValidation:
    def test_zero_clients_rejected(self):
        with pytest.raises(BenchError):
            run_kv("jakiro", WorkloadSpec(records=64), client_threads=0)

    def test_unknown_controlled_mode_rejected(self):
        from repro.bench import run_controlled_process_time

        with pytest.raises(BenchError):
            run_controlled_process_time("udp", 1.0)

    def test_tiny_run_produces_consistent_result(self):
        scale = Scale(window_us=300.0, records=256)
        result = run_kv(
            "jakiro",
            WorkloadSpec(records=256),
            server_threads=2,
            client_threads=4,
            scale=scale,
        )
        assert result.throughput_mops > 0
        assert result.operations_completed > 0
        assert len(result.latency_us) > 0
        assert 0.0 <= result.client_cpu_utilization <= 1.0
        assert result.mean_latency() > 0
        assert result.percentile_latency(99) >= result.percentile_latency(50)

    def test_deterministic_across_runs(self):
        scale = Scale(window_us=300.0, records=256)

        def run():
            return run_kv(
                "jakiro",
                WorkloadSpec(records=256),
                server_threads=2,
                client_threads=4,
                scale=scale,
            ).throughput_mops

        assert run() == run()


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], [10, 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width

    def test_format_result_includes_everything(self):
        result = ExperimentResult(
            "figX",
            "A title",
            ["col"],
            [[1]],
            paper_expectation="the paper says so",
            observations="we measured it",
        )
        text = format_result(result)
        assert "figX" in text
        assert "A title" in text
        assert "the paper says so" in text
        assert "we measured it" in text
        assert "col" in text


class TestCli:
    def test_list_mode(self, capsys):
        from repro.bench.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out
        assert "params" in out

    def test_unknown_id_is_an_error(self, capsys):
        from repro.bench.cli import main

        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestCalibrationHelpers:
    def test_fetch_round_trip_in_expected_band(self):
        from repro.bench.calibration import measured_fetch_round_trip_us

        round_trip = measured_fetch_round_trip_us()
        assert 1.0 < round_trip < 2.5

    def test_model_iops_matches_hw_curve(self):
        from repro.bench.calibration import model_inbound_iops
        from repro.hw import CONNECTX3

        iops_at = model_inbound_iops()
        assert iops_at(5, 32) == pytest.approx(CONNECTX3.inbound_peak_mops, rel=0.01)
        assert iops_at(5, 4096) < iops_at(5, 256)
