"""Shape gate for the perf-trajectory artifact ``BENCH_sim_speed.json``.

Three layers, none of which ever asserts a wall-clock number:

1. the checked-in artifact exists, is schema-valid, and records every
   scenario with host-dependent fields present and positive;
2. the deterministic fields — dispatched-event counts and modeled
   throughput — are pinned to constants here, so any change to the
   engine's dispatch structure or to the modeled results must be
   deliberate (regenerate the artifact and update the pins in the same
   change);
3. one cheap scenario is re-run live on both engines to tie the
   artifact's deterministic claims back to the current tree.

Wall seconds and events/sec are host-dependent: they are checked for
*presence*, never for value.
"""

import json
import os

from repro.bench.speed import (
    ARTIFACT_NAME,
    FROZEN_BASELINE,
    SCHEMA_VERSION,
    _run_event_churn,
    write_artifact,
)

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
ARTIFACT = os.path.join(REPO_ROOT, ARTIFACT_NAME)

#: Deterministic pins: scenario -> (dispatched, modeled_mops as written
#: by the artifact's 6-decimal rounding).  Regenerating the artifact
#: after an intentional dispatch-structure change updates these.
EXPECTED = {
    "event-churn": (400_001, 0.0),
    "timeout-storm": (733_250, 0.0),
    "fig03-replay": (202_714, 11.26),
    "cluster-replay": (551_793, 6.693867),
}

HOST_DEPENDENT_FIELDS = (
    "wall_s_fast",
    "wall_s_reference",
    "events_per_sec_fast",
    "events_per_sec_reference",
    "speedup",
)


def load_artifact():
    assert os.path.exists(ARTIFACT), (
        f"{ARTIFACT_NAME} missing at repo root — regenerate with "
        "PYTHONPATH=src python -m repro.bench speed --json"
    )
    with open(ARTIFACT, encoding="utf-8") as source:
        return json.load(source)


class TestArtifactShape:
    def test_schema_and_scenarios(self):
        payload = load_artifact()
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["repetitions"] >= 1
        names = [scenario["name"] for scenario in payload["scenarios"]]
        assert names == list(EXPECTED)

    def test_provenance_recorded(self):
        # v2 schema: the artifact stamps the tree and scenario scale it
        # measured.  The SHA is host/commit-dependent — presence and
        # shape only, never a pinned value.
        payload = load_artifact()
        provenance = payload["provenance"]
        assert provenance["git_sha"]
        assert isinstance(provenance["git_dirty"], bool)
        scale = provenance["scale"]
        assert scale["window_us"] > 0
        assert 0 <= scale["warmup_fraction"] < 1
        assert scale["records"] > 0
        assert isinstance(scale["full"], bool)

    def test_deterministic_fields_are_pinned(self):
        payload = load_artifact()
        for scenario in payload["scenarios"]:
            dispatched, mops = EXPECTED[scenario["name"]]
            assert scenario["dispatched_fast"] == dispatched, scenario["name"]
            assert scenario["dispatched_reference"] == dispatched, (
                scenario["name"]
            )
            assert scenario["modeled_mops"] == mops, scenario["name"]

    def test_host_dependent_fields_present_never_asserted(self):
        payload = load_artifact()
        for scenario in payload["scenarios"]:
            for field in HOST_DEPENDENT_FIELDS:
                assert scenario[field] > 0, (scenario["name"], field)

    def test_frozen_baseline_recorded(self):
        payload = load_artifact()
        baseline = payload["frozen_baseline"]
        assert baseline["scenario"] in EXPECTED
        assert baseline["commit"] == FROZEN_BASELINE["commit"]
        assert baseline["wall_s"] > 0
        assert baseline["modeled_mops"] > 0
        assert baseline["shape"]
        assert baseline["speedup_vs_fast"] > 0


class TestArtifactMatchesTree:
    def test_event_churn_counts_reproduce_live(self):
        # The cheapest scenario re-run on both engines: ties the pinned
        # counts to the current tree, not just to the checked-in file.
        _wall_fast, dispatched_fast, _ = _run_event_churn(False)
        _wall_ref, dispatched_ref, _ = _run_event_churn(True)
        assert dispatched_fast == dispatched_ref == EXPECTED["event-churn"][0]


class TestWriterRoundTrip:
    def test_write_artifact_round_trips(self, tmp_path):
        # A full suite run is minutes; exercise the writer with a
        # hand-built single result instead.
        from repro.bench.speed import SpeedResult

        result = SpeedResult(
            name="cluster-replay",
            description="writer round-trip",
            repetitions=1,
            dispatched_fast=10,
            dispatched_reference=10,
            wall_s_fast=0.5,
            wall_s_reference=1.0,
            modeled_mops=1.0,
        )
        path = write_artifact([result], str(tmp_path / "artifact.json"))
        with open(path, encoding="utf-8") as source:
            payload = json.load(source)
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["provenance"]["git_sha"]
        assert payload["provenance"]["scale"]["records"] > 0
        assert payload["scenarios"][0]["speedup"] == 2.0
        assert payload["frozen_baseline"]["speedup_vs_fast"] == round(
            FROZEN_BASELINE["wall_s"] / 0.5, 2
        )
