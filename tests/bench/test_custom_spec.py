"""Tests for JSON-spec-driven custom experiments."""

import json

import pytest

from repro.bench.custom import load_spec, run_custom
from repro.bench.harness import Scale
from repro.errors import BenchError


def write_spec(tmp_path, spec):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path)


TINY = Scale(window_us=400.0, records=256)


class TestLoadSpec:
    def test_defaults_applied(self, tmp_path):
        spec = load_spec(write_spec(tmp_path, {}))
        assert spec["systems"] == ["jakiro"]
        assert spec["_sweep_axis"] is None

    def test_single_system_string_normalized(self, tmp_path):
        spec = load_spec(write_spec(tmp_path, {"systems": "serverreply"}))
        assert spec["systems"] == ["serverreply"]

    def test_unknown_system_rejected(self, tmp_path):
        with pytest.raises(BenchError):
            load_spec(write_spec(tmp_path, {"systems": ["redis"]}))

    def test_sweep_axis_detected(self, tmp_path):
        spec = load_spec(write_spec(tmp_path, {"server_threads": [2, 4]}))
        assert spec["_sweep_axis"] == "server_threads"

    def test_two_sweep_axes_rejected(self, tmp_path):
        with pytest.raises(BenchError):
            load_spec(
                write_spec(
                    tmp_path, {"server_threads": [2, 4], "value_size": [32, 64]}
                )
            )

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(BenchError):
            load_spec(str(path))


class TestRunCustom:
    def test_single_point_run(self, tmp_path):
        spec = load_spec(
            write_spec(
                tmp_path,
                {
                    "title": "one point",
                    "workload": {"records": 256},
                    "client_threads": 6,
                    "window_us": 400,
                },
            )
        )
        result = run_custom(spec, TINY)
        assert result.title == "one point"
        assert len(result.rows) == 1
        assert result.rows[0][1] > 0

    def test_sweep_produces_row_per_point(self, tmp_path):
        spec = load_spec(
            write_spec(
                tmp_path,
                {
                    "systems": ["jakiro", "serverreply"],
                    "server_threads": [2, 4],
                    "client_threads": 8,
                    "workload": {"records": 256},
                    "window_us": 400,
                },
            )
        )
        result = run_custom(spec, TINY)
        assert [row[0] for row in result.rows] == [2, 4]
        assert result.columns == ["server_threads", "jakiro_mops", "serverreply_mops"]
        for row in result.rows:
            assert row[1] > 0 and row[2] > 0

    def test_value_size_sweep_affects_workload(self, tmp_path):
        spec = load_spec(
            write_spec(
                tmp_path,
                {
                    "value_size": [32, 4096],
                    "client_threads": 8,
                    "workload": {"records": 128},
                    "window_us": 400,
                },
            )
        )
        result = run_custom(spec, TINY)
        small, large = result.rows[0][1], result.rows[1][1]
        assert small > large  # big values are slower

    def test_cli_spec_flag(self, tmp_path, capsys):
        from repro.bench.cli import main

        path = write_spec(
            tmp_path,
            {
                "title": "cli spec smoke",
                "client_threads": 4,
                "workload": {"records": 128},
                "window_us": 300,
            },
        )
        assert main(["--spec", path]) == 0
        assert "cli spec smoke" in capsys.readouterr().out
