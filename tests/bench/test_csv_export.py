"""Tests for the CSV exporter."""

import csv
import os

from repro.bench.figures import ExperimentResult
from repro.bench.report import write_csv


def make_result(series=None):
    return ExperimentResult(
        "figX",
        "demo",
        ["size", "mops"],
        [[32, 5.5], [64, 5.4]],
        paper_expectation="n/a",
        series=series or {},
    )


class TestCsvExport:
    def test_rows_written(self, tmp_path):
        path = write_csv(make_result(), str(tmp_path))
        assert path.endswith("figX.csv")
        with open(path, newline="") as source:
            rows = list(csv.reader(source))
        assert rows[0] == ["size", "mops"]
        assert rows[1] == ["32", "5.5"]
        assert rows[2] == ["64", "5.4"]

    def test_series_written_when_present(self, tmp_path):
        result = make_result(series={"jakiro": [1.0, 2.0, 3.0], "reply": [9.0]})
        write_csv(result, str(tmp_path))
        series_path = tmp_path / "figX_series.csv"
        assert series_path.exists()
        with open(series_path, newline="") as source:
            rows = list(csv.reader(source))
        assert rows[0] == ["jakiro", "reply"]
        assert rows[1] == ["1.0", "9.0"]
        assert rows[3] == ["3.0", ""]  # ragged series padded with blanks

    def test_no_series_file_without_series(self, tmp_path):
        write_csv(make_result(), str(tmp_path))
        assert not (tmp_path / "figX_series.csv").exists()

    def test_directory_created(self, tmp_path):
        target = os.path.join(str(tmp_path), "nested", "dir")
        path = write_csv(make_result(), target)
        assert os.path.exists(path)

    def test_cli_csv_flag(self, tmp_path, capsys):
        from repro.bench.cli import main

        # Use a cheap experiment to keep the test fast.
        assert main(["fig5", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "fig5.csv").exists()
