"""The install self-check must pass on a correct checkout."""

from repro.bench.validation import format_validation, run_validation


def test_validation_suite_passes():
    checks = run_validation()
    report = format_validation(checks)
    assert all(check.passed for check in checks), "\n" + report
    # Every headline constant is covered.
    names = " ".join(check.name for check in checks)
    assert "in-bound peak" in names
    assert "out-bound peak" in names
    assert "[L, H]" in names
    assert "Jakiro end-to-end" in names
    assert "model vs simulator" in names


def test_format_marks_failures():
    from repro.bench.validation import ValidationCheck

    checks = [
        ValidationCheck("good", "1", "1", True),
        ValidationCheck("bad", "1", "2", False),
    ]
    report = format_validation(checks)
    assert "[PASS] good" in report
    assert "[FAIL] bad" in report
    assert "1 FAILED" in report
