"""Unit test for the latency-decomposition harness."""

import pytest

from repro.bench.breakdown import measure_breakdown
from repro.bench.harness import Scale


class TestMeasureBreakdown:
    def test_phases_tile_total(self):
        scale = Scale(window_us=800.0)
        breakdown = measure_breakdown(0.5, client_threads=8, scale=scale)
        assert breakdown.calls > 0
        total = breakdown.send_us + breakdown.server_us + breakdown.fetch_us
        assert total == pytest.approx(breakdown.total_us, rel=0.02)

    def test_server_phase_tracks_process_time(self):
        scale = Scale(window_us=800.0)
        fast = measure_breakdown(0.2, client_threads=8, scale=scale)
        slow = measure_breakdown(3.0, client_threads=8, scale=scale)
        assert slow.server_us > fast.server_us + 2.0

    def test_phases_positive_under_light_load(self):
        scale = Scale(window_us=600.0)
        breakdown = measure_breakdown(0.3, client_threads=2, scale=scale)
        assert breakdown.send_us > 0
        assert breakdown.server_us > 0
        assert breakdown.fetch_us > 0
        # Unloaded, a call is a handful of microseconds.
        assert breakdown.total_us < 8.0
