"""Edge-case tests for the Pilaf and FaRM baselines."""

import pytest

from repro.baselines import FarmServer, PilafServer
from repro.errors import KVError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator


def make_pilaf(**kwargs):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    server = PilafServer(sim, cluster, **kwargs)
    return sim, cluster, server


class TestPilafEdgeCases:
    def test_data_slot_reused_on_update(self):
        """Updating a key must not leak data extents."""
        sim, cluster, server = make_pilaf(capacity=64)
        server.preload([(b"k", b"v1")])
        first_slot = server.table.lookup(b"k")[0][1]
        server.preload([(b"k", b"v2-longer")])
        second_slot = server.table.lookup(b"k")[0][1]
        assert first_slot == second_slot
        assert server._next_data_slot == 1

    def test_data_extents_exhaustion_raises(self):
        sim, cluster, server = make_pilaf(capacity=8)
        with pytest.raises(KVError):
            server.preload((f"k{i}".encode(), b"v") for i in range(12))

    def test_kicked_entries_keep_pointing_at_their_records(self):
        """Cuckoo kicks relocate index entries; the data offset must move
        with the key, not the slot."""
        sim, cluster, server = make_pilaf(capacity=256)
        keys = [f"key-{i}".encode() for i in range(int(256 * 0.7))]
        server.preload((k, b"value-of-" + k) for k in keys)
        assert server.table.kick_total > 0  # kicks actually happened
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            for key in keys[::7]:
                value = yield from client.get(key)
                assert value == b"value-of-" + key

        sim.process(body(sim))
        sim.run()

    def test_oversized_put_rejected_at_server(self):
        sim, cluster, server = make_pilaf(capacity=64, max_value_bytes=64)
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            yield from client.put(b"k", bytes(65))

        sim.process(body(sim))
        from repro.sim import SimulationError

        with pytest.raises((KVError, SimulationError)):
            sim.run()

    def test_key_sharing_candidate_slot_with_other_key(self):
        """Probing must skip non-matching entries and find the right one."""
        sim, cluster, server = make_pilaf(capacity=128)
        keys = [f"x{i}".encode() for i in range(64)]
        server.preload((k, k + b"-value") for k in keys)
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            results = []
            for key in keys:
                results.append((yield from client.get(key)))
            return results

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == [k + b"-value" for k in keys]


class TestFarmEdgeCases:
    def make_farm(self, **kwargs):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        server = FarmServer(sim, cluster, **kwargs)
        return sim, cluster, server

    def test_wrapping_neighborhood_needs_two_reads(self):
        sim, cluster, server = self.make_farm(capacity=64, neighborhood=8)
        # Find a key homed near the end of the table so its window wraps.
        wrap_key = None
        for i in range(10000):
            key = f"wrap{i}".encode()[:16]
            if server.table.home(key) > 64 - 8:
                wrap_key = key
                break
        assert wrap_key is not None
        server.preload([(wrap_key, b"v")])
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            return (yield from client.get(wrap_key))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == b"v"
        assert client.stats.rdma_reads.value == 2  # split contiguous runs

    def test_oversized_key_rejected(self):
        sim, cluster, server = self.make_farm(max_key_bytes=16)
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            yield from client.put(bytes(17), b"v")

        sim.process(body(sim))
        from repro.sim import SimulationError

        with pytest.raises((KVError, SimulationError)):
            sim.run()

    def test_torn_slot_retried_under_write_load(self):
        """A GET racing a slot rewrite sees a bad CRC and refetches."""
        sim, cluster, server = self.make_farm(
            capacity=256, neighborhood=8, put_write_us=3.0, max_value_bytes=64
        )
        server.preload([(b"hot-key-000000", b"A" * 32)])
        reader = server.connect(cluster.client_machines[0])
        writer = server.connect(cluster.client_machines[1])
        observed = []

        def read_loop(sim):
            for _ in range(200):
                observed.append((yield from reader.get(b"hot-key-000000")))

        def write_loop(sim):
            for i in range(50):
                yield from writer.put(b"hot-key-000000", bytes([65 + i % 2]) * 32)

        sim.process(read_loop(sim))
        sim.process(write_loop(sim))
        sim.run()
        for value in observed:
            assert value in (b"A" * 32, b"B" * 32)
        assert reader.stats.checksum_retries.value > 0
