"""Tests for the DrTM-style lock-based bypass store."""

import pytest

from repro.baselines import DrtmServer
from repro.errors import KVError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator


def make_drtm(capacity=512, **kwargs):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    server = DrtmServer(sim, cluster, capacity=capacity, **kwargs)
    return sim, cluster, server


class TestDrtmSemantics:
    def test_put_then_get(self):
        sim, cluster, server = make_drtm()
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            yield from client.put(b"key-0000000001", b"payload")
            return (yield from client.get(b"key-0000000001"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == b"payload"

    def test_get_missing_returns_none(self):
        sim, cluster, server = make_drtm()
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            return (yield from client.get(b"missing-key"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value is None

    def test_update(self):
        sim, cluster, server = make_drtm()
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            yield from client.put(b"k", b"old")
            yield from client.put(b"k", b"new")
            return (yield from client.get(b"k"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == b"new"

    def test_preload_visible(self):
        sim, cluster, server = make_drtm()
        server.preload((f"key-{i}".encode(), f"v{i}".encode()) for i in range(100))
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            return (yield from client.get(b"key-42"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == b"v42"

    def test_server_cpu_never_involved(self):
        sim, cluster, server = make_drtm()
        server.preload([(b"k", b"v")])
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            for _ in range(10):
                yield from client.get(b"k")
                yield from client.put(b"k", b"v2")

        sim.process(body(sim))
        sim.run()
        # Every single operation was one-sided: served by the NIC alone.
        assert cluster.server.rnic.in_pipeline.operations > 0

    def test_value_size_validated(self):
        sim, cluster, server = make_drtm(max_value_bytes=32)
        client = server.connect(cluster.client_machines[0])
        with pytest.raises(KVError):
            next(client.put(b"k", bytes(33)))


class TestDrtmAmplificationAndContention:
    def test_every_get_costs_at_least_three_ops(self):
        """Lock + read + unlock: the §5 amplification in its purest form."""
        sim, cluster, server = make_drtm()
        server.preload([(f"key-{i}".encode(), b"v") for i in range(50)])
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            for i in range(50):
                yield from client.get(f"key-{i}".encode())

        sim.process(body(sim))
        sim.run()
        assert client.stats.ops_per_request() >= 3.0

    def test_mutual_exclusion_under_contention(self):
        """Concurrent writers to one hot key never interleave torn state."""
        sim, cluster, server = make_drtm()
        server.preload([(b"hot", b"X" * 16)])
        clients = [server.connect(cluster.client_machines[m]) for m in range(4)]
        observed = []

        def writer(sim, client, byte):
            for _ in range(25):
                yield from client.put(b"hot", bytes([byte]) * 16)

        def reader(sim, client):
            for _ in range(120):
                value = yield from client.get(b"hot")
                observed.append(value)

        for index, client in enumerate(clients[:3]):
            sim.process(writer(sim, client, 65 + index))
        sim.process(reader(sim, clients[3]))
        sim.run()
        # Locked access: a reader can never see a half-written value.
        for value in observed:
            assert len(set(value)) == 1, f"torn read escaped the lock: {value!r}"

    def test_hot_key_contention_burns_cas_retries(self):
        sim, cluster, server = make_drtm()
        server.preload([(b"hot", b"v")])
        clients = [server.connect(cluster.client_machines[m % 7]) for m in range(8)]

        def hammer(sim, client):
            for _ in range(40):
                yield from client.get(b"hot")

        for client in clients:
            sim.process(hammer(sim, client))
        sim.run()
        total_retries = sum(c.stats.cas_retries.value for c in clients)
        assert total_retries > 0

    def test_uniform_load_mostly_retry_free(self):
        sim, cluster, server = make_drtm(capacity=4096)
        keys = [f"key-{i}".encode() for i in range(512)]
        server.preload((k, b"v") for k in keys)
        clients = [server.connect(cluster.client_machines[m % 7]) for m in range(8)]

        def spread(sim, client, offset):
            for i in range(40):
                yield from client.get(keys[(offset + i * 13) % 512])

        for index, client in enumerate(clients):
            sim.process(spread(sim, client, index * 63))
        sim.run()
        total_ops = sum(c.stats.rdma_ops.value for c in clients)
        total_retries = sum(c.stats.cas_retries.value for c in clients)
        assert total_retries < 0.05 * total_ops
