"""Tests for the RDMA-Memcached and FaRM baselines."""

import pytest

from repro.baselines import (
    FarmServer,
    MemcachedCostModel,
    RdmaMemcachedServer,
    build_serverreply_kv,
)
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator, ThroughputMeter


def make_memcached(threads=16, **kwargs):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    server = RdmaMemcachedServer(sim, cluster, threads=threads, **kwargs)
    return sim, cluster, server


class TestMemcachedSemantics:
    def test_put_get_round_trip(self):
        sim, cluster, server = make_memcached(threads=4)
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            yield from client.put(b"k", b"v")
            return (yield from client.get(b"k"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == b"v"

    def test_get_missing(self):
        sim, cluster, server = make_memcached(threads=4)
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            return (yield from client.get(b"missing"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value is None

    def test_shared_cache_visible_across_threads(self):
        """Unlike EREW Jakiro, any thread can serve any key (shared)."""
        sim, cluster, server = make_memcached(threads=8)
        writer = server.connect(cluster.client_machines[0])
        readers = [server.connect(cluster.client_machines[m]) for m in range(1, 5)]
        values = []

        def write(sim):
            yield from writer.put(b"shared", b"data")

        def read(sim, client):
            yield sim.timeout(200.0)
            values.append((yield from client.get(b"shared")))

        sim.process(write(sim))
        for reader in readers:
            sim.process(read(sim, reader))
        sim.run()
        assert values == [b"data"] * 4

    def test_lru_eviction_at_capacity(self):
        sim, cluster, server = make_memcached(threads=2, capacity=3)
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            for i in range(5):
                yield from client.put(f"k{i}".encode(), b"v")
            return (yield from client.get(b"k0"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value is None
        assert server.cache.evictions == 2

    def test_lock_contention_counted(self):
        sim, cluster, server = make_memcached(threads=16)
        clients = [server.connect(cluster.client_machines[i % 7]) for i in range(20)]

        def loop(sim, client, tag):
            for i in range(15):
                yield from client.put(f"{tag}-{i}".encode(), b"v")

        for i, client in enumerate(clients):
            sim.process(loop(sim, client, i))
        sim.run()
        assert server.kv_stats.lock_waits.value > 0


def measure_memcached(threads, get_ratio=0.95, window=8000.0, clients=35):
    sim, cluster, server = make_memcached(threads=threads)
    # Keyspace much larger than the locality window, so uniform load does
    # not ride the hot-key shortcut.
    keys = [f"key-{i}".encode() for i in range(4096)]
    server.preload((k, bytes(32)) for k in keys)
    meter = ThroughputMeter(window_start=window * 0.25, window_end=window)

    def loop(sim, client, offset):
        index = offset
        while True:
            key = keys[(index * 7919) % len(keys)]
            if (index % 100) < get_ratio * 100:
                yield from client.get(key)
            else:
                yield from client.put(key, bytes(32))
            meter.record(sim.now)
            index += 1

    for i in range(clients):
        client = server.connect(cluster.client_machines[i % 7])
        sim.process(loop(sim, client, i * 31))
    sim.run(until=window)
    return meter.mops(elapsed=window * 0.75)


class TestMemcachedScaling:
    def test_throughput_scales_with_threads_until_16(self):
        """Fig. 12: CPU-bound — more threads help, unlike ServerReply."""
        at_4 = measure_memcached(4)
        at_16 = measure_memcached(16)
        assert at_16 > 2.0 * at_4

    def test_peak_near_paper_value(self):
        """Paper: ~1.3 MOPS at 16 threads, 95% GET, 32 B values."""
        assert measure_memcached(16) == pytest.approx(1.3, rel=0.25)

    def test_write_heavy_collapses(self):
        """Fig. 16: the global lock serializes PUT-heavy load."""
        read_heavy = measure_memcached(16, get_ratio=0.95)
        write_heavy = measure_memcached(16, get_ratio=0.05)
        assert write_heavy < 0.5 * read_heavy


class TestFarm:
    def make_farm(self, **kwargs):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        server = FarmServer(sim, cluster, **kwargs)
        return sim, cluster, server

    def test_put_get_round_trip(self):
        sim, cluster, server = self.make_farm()
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            yield from client.put(b"key-000000000001", b"value")
            yield sim.timeout(5.0)
            return (yield from client.get(b"key-000000000001"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == b"value"

    def test_get_missing(self):
        sim, cluster, server = self.make_farm()
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            return (yield from client.get(b"gone"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value is None

    def test_one_read_fetches_whole_neighborhood(self):
        """FaRM's trade: few reads, many bytes (N*(Sk+Sv) per GET)."""
        sim, cluster, server = self.make_farm(neighborhood=8)
        keys = [f"key-{i:012d}".encode() for i in range(1000)]
        server.preload((k, bytes(32)) for k in keys)
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            for key in keys[::29]:
                value = yield from client.get(key)
                assert value == bytes(32)

        sim.process(body(sim))
        sim.run()
        reads_per_get = client.stats.rdma_reads.value / client.stats.gets.value
        assert reads_per_get < 1.5  # usually one (two only at the wrap)
        # ... but each GET hauled the full neighborhood.
        assert client.stats.bytes_per_get() >= 8 * server.slot_bytes * 0.9

    def test_farm_fetches_more_bytes_than_pilaf_for_same_data(self):
        from repro.baselines import PilafServer

        sim, cluster, server = self.make_farm(neighborhood=8)
        keys = [f"key-{i:012d}".encode() for i in range(500)]
        server.preload((k, bytes(32)) for k in keys)
        farm_client = server.connect(cluster.client_machines[0])

        sim2 = Simulator()
        cluster2 = build_cluster(sim2, CLUSTER_EUROSYS17)
        pilaf = PilafServer(sim2, cluster2, capacity=2048)
        pilaf.preload((k, bytes(32)) for k in keys)
        pilaf_client = pilaf.connect(cluster2.client_machines[0])

        def farm_body(sim):
            for key in keys[::17]:
                yield from farm_client.get(key)

        def pilaf_body(sim):
            for key in keys[::17]:
                yield from pilaf_client.get(key)

        sim.process(farm_body(sim))
        sim.run()
        sim2.process(pilaf_body(sim2))
        sim2.run()
        farm_bytes = farm_client.stats.bytes_per_get()
        pilaf_reads = pilaf_client.stats.reads_per_get()
        assert farm_bytes > 300  # an order more than one 32 B value
        assert pilaf_reads > 2.0  # but Pilaf pays in operations


class TestServerReplyKv:
    def test_round_trip_and_reply_counting(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        kv = build_serverreply_kv(sim, cluster, threads=4)
        client = kv.connect(cluster.client_machines[0])

        def body(sim):
            yield from client.put(b"k", b"v")
            return (yield from client.get(b"k"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == b"v"
        assert kv.server.stats.replies_sent.value == 2
