"""Tests for the HERD-style UC/UD RPC baseline (§5)."""

import pytest

from repro.baselines import HerdServer
from repro.errors import ProtocolError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator, ThroughputMeter


def echo(payload, ctx):
    return payload, 0.2


def make_herd(loss=0.0, threads=4, handler=echo):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    server = HerdServer(
        sim, cluster, handler=handler, threads=threads, loss_probability=loss
    )
    return sim, cluster, server


class TestHerdBasics:
    def test_round_trip(self):
        sim, cluster, server = make_herd()
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            return (yield from client.call(b"ping"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == b"ping"
        assert client.stats.retransmits.value == 0

    def test_many_sequential_calls(self):
        sim, cluster, server = make_herd()
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            results = []
            for i in range(30):
                results.append((yield from client.call(f"m{i}".encode())))
            return results

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == [f"m{i}".encode() for i in range(30)]

    def test_multiple_clients(self):
        sim, cluster, server = make_herd(threads=4)
        clients = [server.connect(cluster.client_machines[i % 7]) for i in range(8)]
        results = {}

        def body(sim, index, client):
            results[index] = yield from client.call(f"c{index}".encode())

        for index, client in enumerate(clients):
            sim.process(body(sim, index, client))
        sim.run()
        assert results == {i: f"c{i}".encode() for i in range(8)}

    def test_oversized_request_rejected(self):
        sim, cluster, server = make_herd()
        client = server.connect(cluster.client_machines[0])
        with pytest.raises(ProtocolError):
            next(client.call(bytes(1 << 20)))

    def test_handler_required(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        with pytest.raises(ProtocolError):
            HerdServer(sim, cluster, handler=None)


class TestHerdLossRecovery:
    def test_calls_survive_heavy_loss(self):
        """10% loss on both directions: every call still completes,
        via timeout + retransmission."""
        sim, cluster, server = make_herd(loss=0.10)
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            results = []
            for i in range(60):
                results.append((yield from client.call(f"r{i}".encode())))
            return results

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == [f"r{i}".encode() for i in range(60)]
        assert client.stats.retransmits.value > 0

    def test_duplicate_requests_not_reexecuted(self):
        """A retransmit whose original was processed must be served from
        the reply cache — the handler runs exactly once per sequence."""
        executions = []

        def counting_handler(payload, ctx):
            executions.append(bytes(payload))
            return payload, 0.2

        sim, cluster, server = make_herd(loss=0.25, handler=counting_handler)
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            for i in range(40):
                yield from client.call(f"u{i}".encode())

        sim.process(body(sim))
        sim.run()
        # Lost *replies* cause retransmits of processed requests; those
        # must not add executions.
        assert len(set(executions)) == len(executions) == 40

    def test_loss_free_channel_never_retransmits(self):
        sim, cluster, server = make_herd(loss=0.0)
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            for i in range(20):
                yield from client.call(b"x")

        sim.process(body(sim))
        sim.run()
        assert client.stats.retransmits.value == 0
        assert server.requests_served.value == 20


class TestHerdPerformance:
    def measure(self, loss=0.0, clients=35, window=3000.0):
        sim, cluster, server = make_herd(loss=loss, threads=6)
        meter = ThroughputMeter(window_start=window * 0.25, window_end=window)

        def loop(sim, client):
            while True:
                yield from client.call(bytes(16))
                meter.record(sim.now)

        for i in range(clients):
            client = server.connect(cluster.client_machines[i % 7])
            sim.process(loop(sim, client))
        sim.run(until=window)
        return meter.mops(elapsed=window * 0.75)

    def test_ud_replies_beat_rc_server_reply(self):
        """§5: UD-based designs out-rate RC server-reply (cheaper issue),
        which is why HERD/FaSST exist."""
        herd = self.measure()
        assert herd > 2.4  # above the RC out-bound ceiling of ~2.1

    def test_but_rfp_still_out_rates_herd_at_peak(self):
        """...while RFP's in-bound-only server still serves more IOPS."""
        herd = self.measure()
        assert herd < 5.0  # Jakiro sustains ~5.5 on this workload

    def test_loss_costs_throughput(self):
        clean = self.measure(loss=0.0)
        lossy = self.measure(loss=0.05)
        assert lossy < clean
