"""Focused tests for the RDMA-Memcached cost/locality model."""

import pytest

from repro.baselines import MemcachedCostModel, RdmaMemcachedServer
from repro.baselines.rdma_memcached import _SharedLruCache
from repro.errors import KVError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator


class TestSharedLruCache:
    def test_put_get(self):
        cache = _SharedLruCache(4)
        cache.put(b"a", b"1")
        assert cache.get(b"a") == b"1"
        assert cache.get(b"b") is None

    def test_eviction_order_is_lru(self):
        cache = _SharedLruCache(2)
        cache.put(b"a", b"1")
        cache.put(b"b", b"2")
        cache.get(b"a")  # refresh a; b is now LRU
        cache.put(b"c", b"3")
        assert cache.get(b"b") is None
        assert cache.get(b"a") == b"1"
        assert cache.evictions == 1

    def test_update_does_not_evict(self):
        cache = _SharedLruCache(2)
        cache.put(b"a", b"1")
        cache.put(b"b", b"2")
        cache.put(b"a", b"new")
        assert cache.evictions == 0
        assert len(cache) == 2

    def test_capacity_validated(self):
        with pytest.raises(KVError):
            _SharedLruCache(0)


class TestLocalityModel:
    def make_server(self, **cost_kwargs):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        model = MemcachedCostModel(**cost_kwargs)
        server = RdmaMemcachedServer(sim, cluster, threads=2, cost_model=model)
        return sim, cluster, server

    def test_first_touch_is_cold(self):
        _, _, server = self.make_server()
        assert server._locality(b"fresh") == 1.0

    def test_second_touch_is_hot(self):
        _, _, server = self.make_server(locality_factor=0.3)
        server._locality(b"k")
        assert server._locality(b"k") == 0.3

    def test_window_evicts_old_keys(self):
        _, _, server = self.make_server(locality_window=4)
        server._locality(b"old")
        for i in range(4):
            server._locality(f"filler-{i}".encode())
        assert server._locality(b"old") == 1.0  # fell out of the window

    def test_touch_refreshes_recency(self):
        _, _, server = self.make_server(locality_window=3, locality_factor=0.5)
        server._locality(b"keep")
        server._locality(b"x1")
        server._locality(b"keep")  # refresh
        server._locality(b"x2")
        server._locality(b"x3")
        assert server._locality(b"keep") == 0.5  # still resident

    def test_paper_calibration_constants(self):
        model = MemcachedCostModel()
        # GET path CPU sums to ~11 us: 16 threads -> ~1.3-1.45 MOPS cap.
        per_get = model.recv_handling_us + model.get_lock_us + model.get_process_us
        assert 16 / per_get == pytest.approx(1.48, rel=0.05)
        # The global write lock alone caps PUT-heavy load below 0.5 MOPS.
        assert 1.0 / model.put_lock_us < 0.5
