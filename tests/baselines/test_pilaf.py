"""Tests for the Pilaf server-bypass baseline."""

import pytest

from repro.baselines import PilafClient, PilafServer
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.sim import Simulator


def make_pilaf(capacity=2048, **kwargs):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    server = PilafServer(sim, cluster, capacity=capacity, **kwargs)
    return sim, cluster, server


class TestPilafSemantics:
    def test_put_then_get(self):
        sim, cluster, server = make_pilaf()
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            yield from client.put(b"user:7", b"heroes")
            return (yield from client.get(b"user:7"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == b"heroes"

    def test_get_missing_returns_none(self):
        sim, cluster, server = make_pilaf()
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            return (yield from client.get(b"absent"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value is None

    def test_update_value(self):
        sim, cluster, server = make_pilaf()
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            yield from client.put(b"k", b"old-value")
            yield from client.put(b"k", b"new")
            yield sim.timeout(5.0)  # let the staged data write settle
            return (yield from client.get(b"k"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == b"new"

    def test_preload_visible_to_one_sided_gets(self):
        sim, cluster, server = make_pilaf()
        server.preload((f"key-{i}".encode(), f"val-{i}".encode()) for i in range(500))
        client = server.connect(cluster.client_machines[1])

        def body(sim):
            return (yield from client.get(b"key-123"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == b"val-123"

    def test_gets_do_not_touch_server_cpu(self):
        """The essence of server-bypass: GET consumes zero server threads."""
        sim, cluster, server = make_pilaf()
        server.preload([(b"k", b"v")])
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            for _ in range(20):
                yield from client.get(b"k")

        sim.process(body(sim))
        sim.run()
        assert server.rpc_server.stats.requests.value == 0
        assert client.stats.gets.value == 20


class TestBypassAccessAmplification:
    def test_reads_per_get_matches_pilaf_ballpark(self):
        """Paper: ~3.2 RDMA reads per GET at 75% fill (probes + data)."""
        sim, cluster, server = make_pilaf(capacity=4096)
        keys = [f"key-{i}".encode() for i in range(int(4096 * 0.75))]
        server.preload((k, b"x" * 32) for k in keys)
        client = server.connect(cluster.client_machines[0])

        def body(sim):
            for key in keys[::13]:
                yield from client.get(key)

        sim.process(body(sim))
        sim.run()
        assert 2.2 < client.stats.reads_per_get() < 4.0

    def test_amplification_grows_with_fill(self):
        def mean_reads(fill):
            sim, cluster, server = make_pilaf(capacity=4096)
            keys = [f"key-{i}".encode() for i in range(int(4096 * fill))]
            server.preload((k, b"x" * 32) for k in keys)
            client = server.connect(cluster.client_machines[0])

            def body(sim):
                for key in keys[:: max(1, len(keys) // 200)]:
                    yield from client.get(key)

            sim.process(body(sim))
            sim.run()
            return client.stats.reads_per_get()

        assert mean_reads(0.75) > mean_reads(0.20)


class TestCrcRaceDetection:
    def test_get_racing_put_retries_and_returns_consistent_value(self):
        """A GET overlapping a PUT must never return torn bytes."""
        sim, cluster, server = make_pilaf(put_write_us=3.0)
        server.preload([(b"hot", b"A" * 64)])
        client = server.connect(cluster.client_machines[0])
        writer = server.connect(cluster.client_machines[1])
        observed = []

        def reader(sim):
            for _ in range(300):
                value = yield from client.get(b"hot")
                observed.append(value)

        def writer_loop(sim):
            toggle = False
            for _ in range(60):
                toggle = not toggle
                payload = (b"B" if toggle else b"A") * 64
                yield from writer.put(b"hot", payload)

        sim.process(reader(sim))
        sim.process(writer_loop(sim))
        sim.run()
        assert observed, "reader made no progress"
        for value in observed:
            assert value in (b"A" * 64, b"B" * 64), "torn read escaped the CRC"

    def test_checksum_retries_observed_under_contention(self):
        sim, cluster, server = make_pilaf(put_write_us=3.0)
        server.preload([(b"hot", b"A" * 64)])
        client = server.connect(cluster.client_machines[0])
        writer = server.connect(cluster.client_machines[1])

        def reader(sim):
            for _ in range(400):
                yield from client.get(b"hot")

        def writer_loop(sim):
            for i in range(80):
                yield from writer.put(b"hot", bytes([i & 0xFF]) * 64)

        sim.process(reader(sim))
        sim.process(writer_loop(sim))
        sim.run()
        assert client.stats.checksum_retries.value > 0
