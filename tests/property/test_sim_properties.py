"""Property-based tests for the discrete-event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import ServiceStation, Simulator, Store

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


class TestSchedulerProperties:
    @given(delays)
    def test_callbacks_fire_in_nondecreasing_time_order(self, values):
        sim = Simulator()
        seen = []
        for delay in values:
            sim.schedule(delay, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(values)

    @given(delays)
    def test_clock_ends_at_last_event(self, values):
        sim = Simulator()
        for delay in values:
            sim.schedule(delay, lambda: None)
        sim.run()
        assert sim.now == max(values)

    @given(delays, st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_run_until_processes_exactly_the_due_events(self, values, horizon):
        sim = Simulator()
        fired = []
        for delay in values:
            sim.schedule(delay, fired.append, delay)
        sim.run(until=horizon)
        assert sorted(fired) == sorted(d for d in values if d <= horizon)

    @given(st.lists(st.integers(0, 1000), min_size=2, max_size=50))
    def test_same_timestamp_fifo(self, tags):
        sim = Simulator()
        seen = []
        for tag in tags:
            sim.schedule(5.0, seen.append, tag)
        sim.run()
        assert seen == tags


class TestServiceStationProperties:
    @given(
        st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=8),
    )
    def test_fifo_completions_nondecreasing(self, services, servers):
        sim = Simulator()
        station = ServiceStation(sim, servers=servers)
        completions = []
        for service in services:
            station.submit(service).wait(lambda e: completions.append(sim.now))
        sim.run()
        assert completions == sorted(completions)
        assert len(completions) == len(services)

    @given(
        st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=8),
    )
    def test_work_conservation_bounds(self, services, servers):
        """Total makespan is bounded below by work/servers and above by
        total work (single-server worst case)."""
        sim = Simulator()
        station = ServiceStation(sim, servers=servers)
        for service in services:
            station.submit(service)
        sim.run()
        total = sum(services)
        assert sim.now >= total / servers - 1e-9
        assert sim.now <= total + 1e-9
        assert 0.0 <= station.utilization() <= 1.0

    @given(st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=1, max_size=40))
    def test_single_server_makespan_is_total_work(self, services):
        sim = Simulator()
        station = ServiceStation(sim, servers=1)
        for service in services:
            station.submit(service)
        sim.run()
        assert abs(sim.now - sum(services)) < 1e-6 * max(1.0, sum(services))


class TestStoreProperties:
    @given(st.lists(st.integers(), min_size=0, max_size=50))
    def test_fifo_delivery_exactly_once(self, items):
        sim = Simulator()
        store = Store(sim)
        received = []

        def consumer(sim):
            for _ in range(len(items)):
                value = yield store.get()
                received.append(value)

        sim.process(consumer(sim))
        for item in items:
            store.put(item)
        sim.run()
        assert received == items
        assert len(store) == 0
