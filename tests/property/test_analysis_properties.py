"""Property-based tests for the closed-form performance models."""

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    predict_inbound_peak,
    predict_outbound_peak,
    predict_rfp_throughput,
    predict_server_bypass_throughput,
    predict_server_reply_throughput,
)
from repro.hw import CONNECTX3

process_times = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
thread_counts = st.integers(min_value=1, max_value=16)
client_counts = st.integers(min_value=1, max_value=70)
payloads = st.integers(min_value=0, max_value=8192)


class TestModelProperties:
    @given(process_times, thread_counts, client_counts)
    def test_prediction_is_min_of_candidates(self, process, threads, clients):
        for predictor in (predict_rfp_throughput, predict_server_reply_throughput):
            prediction = predictor(CONNECTX3, threads, clients, process)
            assert prediction.mops == min(prediction.candidates.values())
            assert prediction.candidates[prediction.bottleneck] == prediction.mops
            assert prediction.mops > 0

    @given(thread_counts, client_counts, st.floats(min_value=0.0, max_value=20.0))
    def test_rfp_never_predicted_below_server_reply_with_margin(
        self, threads, clients, process
    ):
        """RFP's candidate set strictly dominates server-reply's network
        bottleneck, so it can only lose through shared bottlenecks (CPU,
        clients) — never by more than the shared candidate's value."""
        rfp = predict_rfp_throughput(CONNECTX3, threads, clients, process)
        reply = predict_server_reply_throughput(CONNECTX3, threads, clients, process)
        assert rfp.mops >= 0.80 * reply.mops

    @given(process_times)
    def test_throughput_monotone_in_process_time(self, process):
        faster = predict_rfp_throughput(CONNECTX3, 8, 35, process)
        slower = predict_rfp_throughput(CONNECTX3, 8, 35, process + 1.0)
        assert slower.mops <= faster.mops + 1e-9

    @given(payloads)
    def test_inbound_peak_monotone_in_size(self, size):
        assert predict_inbound_peak(CONNECTX3, size) >= predict_inbound_peak(
            CONNECTX3, size + 64
        )

    @given(st.integers(min_value=1, max_value=20))
    def test_bypass_monotone_in_amplification(self, k):
        a = predict_server_bypass_throughput(CONNECTX3, k, 21)
        b = predict_server_bypass_throughput(CONNECTX3, k + 1, 21)
        assert b.mops < a.mops

    @given(thread_counts)
    def test_outbound_peak_monotone_in_threads(self, threads):
        now = predict_outbound_peak(CONNECTX3, 32, issuing_threads=threads)
        more = predict_outbound_peak(CONNECTX3, 32, issuing_threads=threads + 1)
        assert more <= now + 1e-12

    @given(client_counts)
    def test_client_bound_scales_linearly_when_binding(self, clients):
        prediction = predict_rfp_throughput(CONNECTX3, 16, clients, 0.2)
        candidate = prediction.candidates["closed-loop-clients"]
        reference = predict_rfp_throughput(CONNECTX3, 16, 1, 0.2).candidates[
            "closed-loop-clients"
        ]
        assert abs(candidate - clients * reference) / candidate < 1e-6
