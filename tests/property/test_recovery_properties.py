"""Property-based tests for shard recovery & ring rejoin.

Two families:

- **Placement restoration** — placement is a pure function of
  membership, so remove + re-add restores the exact pre-crash ring for
  arbitrary shard counts, vnode counts, and victims.  This is the
  algebraic fact the recovery coordinator's "restored ring" planning
  leans on.
- **Linearizability-lite** — full-simulation crash/rejoin cycles at
  random crash/repair times: every write acknowledged before the
  window cut is readable from every final-ring replica afterwards, and
  the run's cluster trace satisfies the rejoin invariants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterConfig,
    FaultPlan,
    HashRing,
    RecoveryConfig,
    RfpCluster,
    ShardStatus,
)
from repro.core.config import RfpConfig
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.kv.store import StoreCostModel
from repro.lint.invariants import ClusterInvariantChecker
from repro.sim import Simulator, Tracer, seeded_rng

node_counts = st.integers(min_value=2, max_value=8)
vnode_counts = st.integers(min_value=16, max_value=256)
victims = st.integers(min_value=0, max_value=7)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def nodes(count):
    return [f"shard{i}" for i in range(count)]


def random_keys(seed, count=1000):
    rng = seeded_rng(seed)
    return [bytes(row) for row in rng.integers(0, 256, size=(count, 12), dtype="u1")]


class TestPlacementRestoration:
    @settings(max_examples=25, deadline=None)
    @given(node_counts, vnode_counts, victims, seeds)
    def test_remove_then_readd_restores_placement(
        self, count, vnodes, victim, seed
    ):
        """Crash + rejoin is a no-op on placement: every key's full
        replica list is byte-identical to before the crash."""
        victim_name = nodes(count)[victim % count]
        ring = HashRing(nodes(count), vnodes=vnodes)
        keys = random_keys(seed)
        factor = min(2, count)
        before = {key: ring.lookup_replicas(key, factor) for key in keys}
        ring.remove_node(victim_name)
        ring.add_node(victim_name)
        assert ring.nodes == sorted(nodes(count))
        after = {key: ring.lookup_replicas(key, factor) for key in keys}
        assert after == before

    @settings(max_examples=25, deadline=None)
    @given(node_counts, vnode_counts, victims)
    def test_with_node_previews_the_restored_ring(self, count, vnodes, victim):
        """The coordinator plans against ``with_node`` without mutating
        the live ring; the preview must equal the eventual re-entry."""
        victim_name = nodes(count)[victim % count]
        ring = HashRing(nodes(count), vnodes=vnodes)
        ring.remove_node(victim_name)
        survivors = ring.nodes
        preview = ring.with_node(victim_name)
        assert ring.nodes == survivors  # live ring untouched
        ring.add_node(victim_name)
        keys = random_keys(7, count=300)
        assert [preview.lookup(k) for k in keys] == [ring.lookup(k) for k in keys]


class TestLinearizabilityLite:
    @settings(max_examples=5, deadline=None)
    @given(
        st.floats(min_value=300.0, max_value=500.0),
        st.floats(min_value=400.0, max_value=700.0),
        seeds,
    )
    def test_acked_writes_survive_random_crash_timing(
        self, kill_at, repair_gap, seed
    ):
        """Whatever the crash/repair timing, an acked PUT is never lost:
        after the rejoin it is readable from every final-ring replica."""
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        tracer = Tracer(sim, categories=["cluster"])
        checker = ClusterInvariantChecker().attach(tracer)
        service = RfpCluster(
            sim,
            cluster,
            shards=3,
            rfp_config=RfpConfig(consecutive_slow_calls=1),
            cost_model=StoreCostModel(jitter_probability=0.0),
            cluster_config=ClusterConfig(replication_factor=2),
            tracer=tracer,
        )
        keys = [f"key{i:04d}".encode() for i in range(32)]
        service.preload([(key, b"\x00" * 8) for key in keys])
        rng = seeded_rng(seed)
        acked = {}

        def body(client, my_keys, salt):
            sequence = int(rng.integers(100))
            while True:
                key = my_keys[sequence % len(my_keys)]
                if sequence % 2 == 0:
                    sequence += 1
                    value = b"%4d%4d" % (salt, sequence)
                    yield from client.put(key, value)
                    acked[key] = value
                else:
                    sequence += 1
                    yield from client.get(key)

        for index in range(4):
            client = service.connect(cluster.machines[3 + index], name=f"c{index}")
            sim.process(body(client, keys[index::4], index))

        repair_at = kill_at + repair_gap
        plan = FaultPlan.kill_then_repair("shard1", kill_at, repair_at)
        plan.arm(sim, service, recovery_config=RecoveryConfig(batch_keys=8))
        sim.run(until=repair_at + 700.0)

        recovery = plan.recoveries[0]
        assert not recovery.active and not recovery.aborted
        assert service.membership.status("shard1") is ShardStatus.HEALTHY
        assert service.ring.nodes == ["shard0", "shard1", "shard2"]
        checker.assert_clean()
        assert acked
        for key, value in acked.items():
            for shard in service.replicas_for(key):
                stored = service.peek(shard, key)
                assert stored is not None, (key, shard)
                # Single writer per key with a monotone suffix: stored
                # may be newer (an in-flight PUT at the cut), not older.
                assert stored >= value, (key, shard, stored, value)
