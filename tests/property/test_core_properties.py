"""Property-based tests for RFP headers, fetch planning, and parameters."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    RESPONSE_HEADER_BYTES,
    RequestHeader,
    ResponseHeader,
    plan_fetch,
    reads_required,
    select_parameters,
)
from repro.core.params import fetch_size_grid


class TestHeaderProperties:
    @given(st.integers(0, 1), st.integers(0, 2**31 - 1))
    def test_request_header_round_trip(self, status, size):
        header = RequestHeader(status=status, size=size)
        assert RequestHeader.unpack(header.pack()) == header

    @given(st.integers(0, 1), st.integers(0, 2**31 - 1), st.integers(0, 0xFFFF))
    def test_response_header_round_trip(self, status, size, time_tenths):
        header = ResponseHeader(status=status, size=size, time_tenths_us=time_tenths)
        assert ResponseHeader.unpack(header.pack()) == header

    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_encode_time_saturates_and_stays_nonnegative(self, time_us):
        encoded = ResponseHeader.encode_time(time_us)
        assert 0 <= encoded <= 0xFFFF
        # Within representable range the decode error is at most 0.05 us.
        if time_us <= 6553.5:
            assert abs(encoded / 10.0 - time_us) <= 0.05 + 1e-9


class TestFetchPlanProperties:
    sizes = st.integers(min_value=0, max_value=1 << 20)
    fetches = st.integers(min_value=RESPONSE_HEADER_BYTES + 1, max_value=4096)

    @given(sizes, fetches)
    def test_plan_tiles_the_response_exactly(self, total, fetch):
        plan = plan_fetch(total, fetch)
        assert plan.first_covers + plan.remainder_bytes == total
        assert plan.first_covers >= 0
        assert plan.remainder_bytes >= 0

    @given(sizes, fetches)
    def test_remainder_starts_right_after_first_read(self, total, fetch):
        plan = plan_fetch(total, fetch)
        if plan.remainder_bytes:
            assert plan.remainder_offset == RESPONSE_HEADER_BYTES + plan.first_covers

    @given(sizes, fetches)
    def test_reads_required_consistent_with_plan(self, total, fetch):
        plan = plan_fetch(total, fetch)
        expected = 1 if plan.remainder_bytes == 0 else 2
        assert reads_required(total, fetch) == expected

    @given(sizes, fetches)
    def test_one_read_iff_covered(self, total, fetch):
        covered = total <= fetch - RESPONSE_HEADER_BYTES
        assert (reads_required(total, fetch) == 1) == covered


class TestParameterSelectionProperties:
    @given(
        st.lists(st.integers(0, 4096), min_size=1, max_size=50),
        st.integers(1, 8),
    )
    def test_selection_stays_inside_the_bounds(self, sizes, retry_upper):
        choice = select_parameters(
            sizes,
            lambda r, f: 10.0 / (1 + f / 1024.0),
            retry_upper,
            256,
            1024,
            size_step=128,
        )
        assert 1 <= choice.retry_bound <= retry_upper
        assert 256 <= choice.fetch_size <= 1024
        assert choice.expected_mops > 0
        # The chosen pair really is a maximiser of the scored table.
        assert choice.expected_mops == max(choice.scores.values())

    @given(st.integers(16, 2048), st.integers(1, 512))
    def test_grid_is_sorted_unique_and_covers_bounds(self, lower, step):
        upper = lower + 777
        grid = fetch_size_grid(lower, upper, step)
        assert grid[0] == lower
        assert grid[-1] == upper
        assert grid == sorted(set(grid))
