"""Linearizability-lite: a history recorder + witness-order search.

The proof obligation behind both tentpole artifacts — the twice-built
FIFO queue and the multi-key transaction layer — is the same: concurrent
operations observed at the client must be explainable by *some* total
order (the witness) that (a) respects real time (an op that returned
before another was invoked comes first) and (b) steps a sequential model
through every recorded result.  This module provides:

- :class:`History` — invoke/complete recording stamped with sim time,
  plus :func:`recorded`, a generator wrapper that brackets any process
  body with the two calls.
- :func:`linearizable` — the Wing & Gong witness-order search, bounded
  for the small histories the property tests generate: depth-first over
  "which pending-or-concurrent op linearizes next", memoizing failed
  (remaining-ops, model-state) pairs so the search is exponential only
  in genuine ambiguity, not history length.
- Two sequential models: :class:`FifoQueueModel` (enqueue/dequeue with
  empty-``None`` results) and :class:`MultiRegisterModel` (atomic
  multi-key writes + single-key reads — multi-PUT's contract).

"Lite" because it checks complete histories only (the tests run every
client body to completion before checking) and because the models
compare recorded results exactly rather than exploring pending-op
completions.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Generator,
    List,
    NamedTuple,
    Optional,
    Set,
    Tuple,
)


class Op(NamedTuple):
    """One completed operation in a recorded history."""

    op_id: int
    kind: str
    args: Any
    result: Any
    invoked_at: float
    returned_at: float


class History:
    """Records invoke/complete pairs stamped with simulated time."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self._next_id = 0
        self._invokes: Dict[int, Tuple[str, Any, float]] = {}
        self._ops: List[Op] = []

    def invoke(self, kind: str, args: Any = None) -> int:
        self._next_id += 1
        self._invokes[self._next_id] = (kind, args, self.sim.now)
        return self._next_id

    def complete(self, op_id: int, result: Any = None) -> None:
        kind, args, invoked_at = self._invokes.pop(op_id)
        self._ops.append(Op(op_id, kind, args, result, invoked_at, self.sim.now))

    def discard(self, op_id: int) -> None:
        """Drop an invoked op that provably took no effect (an aborted
        multi-PUT: commit is atomic, abort discards staging), as if it
        was never invoked."""
        self._invokes.pop(op_id)

    @property
    def pending(self) -> int:
        """Invoked but never completed — must be 0 before checking."""
        return len(self._invokes)

    def ops(self) -> List[Op]:
        return sorted(self._ops, key=lambda op: (op.invoked_at, op.op_id))


def recorded(history: History, kind: str, args: Any, body: Generator) -> Generator:
    """Bracket a process body with invoke/complete recording."""
    op_id = history.invoke(kind, args)
    result = yield from body
    history.complete(op_id, result)
    return result


class FifoQueueModel:
    """Sequential FIFO queue; dequeue of an empty queue returns None."""

    def init(self) -> Tuple:
        return ()

    def apply(self, state: Tuple, op: Op) -> Optional[Tuple]:
        """Next state, or None if ``op``'s recorded result is impossible."""
        if op.kind == "enqueue":
            return state + (op.args,)
        if op.kind == "dequeue":
            if op.result is None:
                return state if not state else None
            if state and state[0] == op.result:
                return state[1:]
            return None
        raise ValueError(f"unknown op kind {op.kind!r}")


class MultiRegisterModel:
    """Multi-key register: ``multi_put`` installs its whole key->value
    map in one step (the transaction contract); ``get`` reads one key."""

    def __init__(self, initial: Optional[Dict[Any, Any]] = None) -> None:
        self._initial = tuple(sorted((initial or {}).items()))

    def init(self) -> Tuple:
        return self._initial

    def apply(self, state: Tuple, op: Op) -> Optional[Tuple]:
        if op.kind == "multi_put":
            merged = dict(state)
            merged.update(dict(op.args))
            return tuple(sorted(merged.items()))
        if op.kind == "get":
            expected = dict(state).get(op.args)
            return state if op.result == expected else None
        raise ValueError(f"unknown op kind {op.kind!r}")


def linearizable(ops: List[Op], model) -> bool:
    """Wing & Gong witness search: does a legal total order exist?

    An op may linearize next iff no *other* remaining op returned
    before it was invoked (real-time order is preserved) and the model
    accepts its recorded result from the current state.  Failed
    (remaining, state) pairs are memoized: model states are canonical
    hashables, so a dead configuration is never re-explored.
    """
    by_id = {op.op_id: op for op in ops}
    failed: Set[Tuple[FrozenSet[int], Any]] = set()

    def search(remaining: FrozenSet[int], state: Any) -> bool:
        if not remaining:
            return True
        key = (remaining, state)
        if key in failed:
            return False
        horizon = min(by_id[op_id].returned_at for op_id in remaining)
        for op_id in sorted(remaining):
            op = by_id[op_id]
            if op.invoked_at > horizon:
                continue  # someone returned before this was even invoked
            next_state = model.apply(state, op)
            if next_state is None:
                continue
            if search(remaining - {op_id}, next_state):
                return True
        failed.add(key)
        return False

    return search(frozenset(by_id), model.init())


def explain_not_linearizable(ops: List[Op]) -> str:
    """A readable dump of the history for assertion messages."""
    lines = [
        f"  [{op.invoked_at:9.3f} -> {op.returned_at:9.3f}] "
        f"{op.kind}({op.args!r}) = {op.result!r}"
        for op in ops
    ]
    return "history is not linearizable:\n" + "\n".join(lines)
