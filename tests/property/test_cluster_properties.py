"""Property-based tests for the consistent-hash ring.

Three families of properties back the cluster router's routing claims:
balance (no node starves with enough vnodes), remap minimality (a
membership change only moves the keys it must), and determinism (a fixed
seed yields a fixed routing decision sequence).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HashRing
from repro.sim import seeded_rng

node_counts = st.integers(min_value=2, max_value=8)
vnode_counts = st.integers(min_value=100, max_value=256)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def nodes(count):
    return [f"shard{i}" for i in range(count)]


def random_keys(seed, count=2000):
    rng = seeded_rng(seed)
    return [bytes(row) for row in rng.integers(0, 256, size=(count, 12), dtype="u1")]


class TestBalance:
    @settings(max_examples=25, deadline=None)
    @given(node_counts, vnode_counts, seeds)
    def test_load_ratio_bounded_with_enough_vnodes(self, count, vnodes, seed):
        """With >=100 vnodes no node sees more than ~4x the least-loaded
        node -- the guarantee that makes per-shard throughput comparable."""
        ring = HashRing(nodes(count), vnodes=vnodes)
        loads = ring.load_counts(random_keys(seed))
        assert set(loads) == set(nodes(count))
        assert min(loads.values()) > 0
        assert max(loads.values()) / min(loads.values()) <= 4.0

    @settings(max_examples=25, deadline=None)
    @given(node_counts, vnode_counts, seeds)
    def test_no_node_hoards_the_keyspace(self, count, vnodes, seed):
        ring = HashRing(nodes(count), vnodes=vnodes)
        loads = ring.load_counts(keys := random_keys(seed))
        assert max(loads.values()) <= 3.0 * len(keys) / count


class TestRemapMinimality:
    @settings(max_examples=25, deadline=None)
    @given(node_counts, seeds)
    def test_join_moves_only_to_the_new_node(self, count, seed):
        """Keys that change owner on a join all land on the joiner, and
        roughly 1/(N+1) of the keyspace moves -- never a full reshuffle."""
        ring = HashRing(nodes(count), vnodes=128)
        keys = random_keys(seed)
        before = {key: ring.lookup(key) for key in keys}
        ring.add_node("joiner")
        moved = [key for key in keys if ring.lookup(key) != before[key]]
        assert all(ring.lookup(key) == "joiner" for key in moved)
        ideal = len(keys) / (count + 1)
        assert len(moved) <= 2.5 * ideal

    @settings(max_examples=25, deadline=None)
    @given(node_counts, seeds)
    def test_leave_moves_only_the_leavers_keys(self, count, seed):
        """Failover semantics: removing a node relocates exactly the keys
        it owned; every other key keeps its owner."""
        ring = HashRing(nodes(count), vnodes=128)
        keys = random_keys(seed)
        before = {key: ring.lookup(key) for key in keys}
        ring.remove_node("shard0")
        for key in keys:
            if before[key] == "shard0":
                assert ring.lookup(key) != "shard0"
            else:
                assert ring.lookup(key) == before[key]


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(node_counts, seeds)
    def test_fixed_seed_fixed_routing(self, count, seed):
        """Two rings built independently route a seeded key stream
        identically -- the repo-wide determinism contract."""
        keys = random_keys(seed, count=500)
        first = HashRing(nodes(count), vnodes=128)
        second = HashRing(list(reversed(nodes(count))), vnodes=128)
        assert [first.lookup(k) for k in keys] == [second.lookup(k) for k in keys]

    @settings(max_examples=25, deadline=None)
    @given(node_counts, seeds, st.integers(min_value=1, max_value=4))
    def test_replica_sets_deterministic(self, count, seed, factor):
        ring = HashRing(nodes(count), vnodes=128)
        for key in random_keys(seed, count=200):
            assert ring.lookup_replicas(key, factor) == ring.lookup_replicas(
                key, factor
            )
