"""Property-based tests for multi-key transactions & the twice-built queue.

Three families, all leaning on :mod:`tests.property.linearizability`:

- **Multi-PUT atomicity** — full-simulation crash/rejoin cycles at
  random crash/repair times with concurrent transactional writers
  (including two writers contending for one shared key group): after
  the run, every key group is *internally equal* — all keys of a group
  hold the same transaction's value — and that value was acked to some
  client.  A single torn group would mean a reader could observe half a
  transaction.
- **Multi-PUT linearizability** — a recorded history of ``multi_put``
  and ``get`` ops across contending clients spanning a crash/repair
  window must admit a witness order under :class:`MultiRegisterModel`
  (atomic multi-key install).
- **Queue linearizability** — the same concurrent producer/consumer
  schedule runs against both builds — :class:`OneSidedQueue` (verbs)
  and :class:`RfpQueue` (RPC) — while a shard on the shared fabric
  crashes and rejoins; each recorded history must admit a witness order
  under :class:`FifoQueueModel`.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterConfig,
    FaultPlan,
    QueueRegion,
    RecoveryConfig,
    RfpCluster,
    RfpQueue,
    ShardStatus,
)
from repro.core.config import RfpConfig
from repro.errors import ClusterError
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.kv.store import StoreCostModel
from repro.lint.invariants import ClusterInvariantChecker
from repro.sim import Simulator, Tracer, seeded_rng

from tests.property.linearizability import (
    FifoQueueModel,
    History,
    MultiRegisterModel,
    explain_not_linearizable,
    linearizable,
    recorded,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def make_service(sim, cluster, tracer):
    return RfpCluster(
        sim,
        cluster,
        shards=3,
        rfp_config=RfpConfig(consecutive_slow_calls=1),
        cost_model=StoreCostModel(jitter_probability=0.0),
        cluster_config=ClusterConfig(replication_factor=2),
        tracer=tracer,
    )


class TestMultiPutAtomicity:
    @settings(max_examples=5, deadline=None)
    @given(
        st.floats(min_value=300.0, max_value=500.0),
        st.floats(min_value=400.0, max_value=700.0),
        seeds,
    )
    def test_no_torn_groups_under_random_crash_timing(
        self, kill_at, repair_gap, seed
    ):
        """Whatever the crash/repair timing, a key group written only by
        whole-group transactions is never torn: every key (on every
        final-ring replica) holds the same committed value, and that
        value was acknowledged to the client that wrote it."""
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        tracer = Tracer(sim, categories=["cluster"])
        checker = ClusterInvariantChecker().attach(tracer)
        service = make_service(sim, cluster, tracer)

        initial = b"%02d%06d" % (0, 0)
        groups = [
            [b"txng%d-%02d" % (group, item) for item in range(4)]
            for group in range(4)
        ]
        for group_keys in groups:
            service.preload([(key, initial) for key in group_keys])
        acked = {group: {initial} for group in range(4)}
        rng = seeded_rng(seed)

        def body(client, salt, my_groups):
            sequence = int(rng.integers(100))
            while True:
                group = my_groups[sequence % len(my_groups)]
                sequence += 1
                value = b"%02d%06d" % (salt, sequence)
                try:
                    yield from client.multi_put(
                        [(key, value) for key in groups[group]]
                    )
                except ClusterError:
                    continue  # lock timeout / mid-crash abort: no effect
                acked[group].add(value)

        # Clients 1 and 2 both write group 3: genuine lock contention.
        ownership = [(1, (0, 3)), (2, (1, 3)), (3, (2,))]
        for salt, my_groups in ownership:
            client = service.connect(cluster.machines[2 + salt], name=f"w{salt}")
            sim.process(body(client, salt, my_groups))

        repair_at = kill_at + repair_gap
        plan = FaultPlan.kill_then_repair("shard1", kill_at, repair_at)
        plan.arm(sim, service, recovery_config=RecoveryConfig(batch_keys=8))
        sim.run(until=repair_at + 700.0)

        recovery = plan.recoveries[0]
        assert not recovery.active and not recovery.aborted
        assert service.membership.status("shard1") is ShardStatus.HEALTHY
        assert service.ring.nodes == ["shard0", "shard1", "shard2"]
        assert service.txns.committed > 0
        checker.assert_clean()
        # NOTE: no leaked-lease audit here — the run cuts mid-flight
        # transactions at `until`, which legitimately leaves open leases.

        for group, group_keys in enumerate(groups):
            stored = {
                service.peek(shard, key)
                for key in group_keys
                for shard in service.replicas_for(key)
            }
            assert len(stored) == 1, (
                f"group {group} is torn across keys/replicas: {stored!r}"
            )
            (value,) = stored
            assert value in acked[group], (
                f"group {group} holds unacked value {value!r}"
            )


class TestMultiPutLinearizability:
    @settings(max_examples=3, deadline=None)
    @given(st.floats(min_value=250.0, max_value=450.0), seeds)
    def test_history_admits_witness_order(self, kill_at, seed):
        """A recorded multi_put/get history spanning a crash/repair
        window linearizes under the atomic multi-register model."""
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        tracer = Tracer(sim, categories=["cluster"])
        checker = ClusterInvariantChecker().attach(tracer)
        service = make_service(sim, cluster, tracer)

        keys = [b"lin-a", b"lin-b", b"lin-c"]
        initial = {key: b"00" for key in keys}
        service.preload(sorted(initial.items()))
        history = History(sim)
        rng = seeded_rng(seed)

        def writer(client, salt, rounds):
            for round_no in range(rounds):
                yield sim.timeout(float(rng.integers(1, 120)))
                value = b"%d%d" % (salt, round_no)
                items = [(key, value) for key in keys]
                op_id = history.invoke("multi_put", tuple(items))
                try:
                    yield from client.multi_put(items)
                except ClusterError:
                    history.discard(op_id)  # aborted: provably no effect
                else:
                    history.complete(op_id, None)

        def reader(client, rounds):
            for round_no in range(rounds):
                yield sim.timeout(float(rng.integers(1, 120)))
                key = keys[round_no % len(keys)]
                value = yield from recorded(
                    history, "get", key, client.get(key)
                )
                assert value is not None

        sim.process(writer(service.connect(cluster.machines[3], name="w0"), 1, 4))
        sim.process(writer(service.connect(cluster.machines[4], name="w1"), 2, 4))
        sim.process(reader(service.connect(cluster.machines[5], name="r0"), 8))

        plan = FaultPlan.kill_then_repair("shard1", kill_at, kill_at + 400.0)
        plan.arm(sim, service, recovery_config=RecoveryConfig(batch_keys=8))
        sim.run(until=kill_at + 400.0 + 2_000.0)

        assert service.membership.status("shard1") is ShardStatus.HEALTHY
        assert history.pending == 0, "a client body never finished"
        ops = history.ops()
        assert any(op.kind == "multi_put" for op in ops)
        checker.assert_clean()
        model = MultiRegisterModel(initial)
        assert linearizable(ops, model), explain_not_linearizable(ops)


class TestQueueLinearizability:
    """The same fault-shadowed producer/consumer schedule, both builds."""

    def _run_history(self, connect_clients):
        """Drive 2 producers + 2 consumers against queue clients built
        by ``connect_clients(sim, cluster, tracer)``, while a cluster
        shard on the same fabric crashes and rejoins."""
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        tracer = Tracer(sim, categories=["cluster"])
        checker = ClusterInvariantChecker().attach(tracer)
        service = make_service(sim, cluster, tracer)
        clients = connect_clients(sim, cluster, tracer)
        history = History(sim)

        def producer(queue, salt, count, start_at):
            yield sim.timeout(start_at)
            for item_no in range(count):
                item = b"%d:%d" % (salt, item_no)
                yield from recorded(
                    history, "enqueue", item, queue.enqueue(item)
                )
                yield sim.timeout(3.0)

        def consumer(queue, want, start_at):
            yield sim.timeout(start_at)
            got = 0
            while got < want:
                value = yield from recorded(
                    history, "dequeue", None, queue.dequeue()
                )
                if value is None:
                    yield sim.timeout(7.0)
                else:
                    got += 1

        sim.process(producer(clients[0], 1, 4, 5.0))
        sim.process(producer(clients[1], 2, 4, 9.0))
        sim.process(consumer(clients[2], 4, 40.0))
        sim.process(consumer(clients[3], 4, 44.0))

        plan = FaultPlan.kill_then_repair("shard1", 30.0, 430.0)
        plan.arm(sim, service, recovery_config=RecoveryConfig(batch_keys=8))
        sim.run(until=2_000.0)

        assert service.membership.status("shard1") is ShardStatus.HEALTHY
        checker.assert_clean()
        assert history.pending == 0, "a queue client never finished"
        ops = history.ops()
        dequeued = [
            op.result
            for op in ops
            if op.kind == "dequeue" and op.result is not None
        ]
        assert sorted(dequeued) == sorted(
            b"%d:%d" % (salt, item_no) for salt in (1, 2) for item_no in range(4)
        )
        assert linearizable(ops, FifoQueueModel()), explain_not_linearizable(ops)

    def test_one_sided_queue_linearizes_under_crash_repair(self):
        def connect(sim, cluster, tracer):
            host = QueueRegion(
                sim, cluster, machine=cluster.machines[7], capacity=64,
                max_item_bytes=16,
            )
            return [
                host.connect(cluster.machines[3 + index], name=f"osq{index}")
                for index in range(4)
            ]

        self._run_history(connect)

    def test_rfp_queue_linearizes_under_crash_repair(self):
        def connect(sim, cluster, tracer):
            queue = RfpQueue(sim, cluster, machine=cluster.machines[7])
            return [
                queue.connect(cluster.machines[3 + index], name=f"rfpq{index}")
                for index in range(4)
            ]

        self._run_history(connect)
