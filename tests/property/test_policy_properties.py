"""Property-based tests for the hybrid switch policy."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import Mode, RfpConfig, SwitchPolicy

# An observation stream: slow/fast fetch calls and reply times.
observations = st.lists(
    st.one_of(
        st.just("slow"),
        st.just("fast"),
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    ),
    max_size=200,
)


def run_policy(policy, stream):
    """Feed observations, translating them to whatever the mode allows."""
    transitions = 0
    for item in stream:
        if policy.mode is Mode.REMOTE_FETCH:
            if item == "slow":
                transitions += policy.note_slow_call()
            elif item == "fast":
                policy.note_fast_call()
            # reply times are meaningless while fetching: skip
        else:
            if isinstance(item, float):
                transitions += policy.note_reply_time(item)
            # fetch outcomes are meaningless while replying: skip
    return transitions


class TestSwitchPolicyProperties:
    @given(observations, st.integers(1, 5))
    def test_mode_always_consistent_with_counters(self, stream, threshold):
        policy = SwitchPolicy(RfpConfig(consecutive_slow_calls=threshold))
        run_policy(policy, stream)
        # The mode is fully determined by the switch counters.
        if policy.switches_to_reply == policy.switches_to_fetch:
            assert policy.mode is Mode.REMOTE_FETCH
        else:
            assert policy.switches_to_reply == policy.switches_to_fetch + 1
            assert policy.mode is Mode.SERVER_REPLY

    @given(observations)
    def test_hybrid_disabled_never_moves(self, stream):
        policy = SwitchPolicy(RfpConfig(hybrid_enabled=False))
        run_policy(policy, stream)
        assert policy.mode is Mode.REMOTE_FETCH
        assert policy.switches_to_reply == 0

    @given(st.integers(1, 6), st.integers(0, 30))
    def test_switch_needs_exactly_threshold_consecutive_slow(self, threshold, extra):
        policy = SwitchPolicy(RfpConfig(consecutive_slow_calls=threshold))
        for i in range(threshold - 1):
            assert policy.note_slow_call() is False
        assert policy.note_slow_call() is True
        assert policy.mode is Mode.SERVER_REPLY

    @given(observations)
    def test_slow_streak_never_exceeds_threshold(self, stream):
        config = RfpConfig(consecutive_slow_calls=3)
        policy = SwitchPolicy(config)
        for item in stream:
            if policy.mode is Mode.REMOTE_FETCH and item in ("slow", "fast"):
                if item == "slow":
                    policy.note_slow_call()
                else:
                    policy.note_fast_call()
                assert policy.consecutive_slow < config.consecutive_slow_calls
            elif policy.mode is Mode.SERVER_REPLY and isinstance(item, float):
                policy.note_reply_time(item)
