"""Property-based tests for the KV data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kv import (
    CuckooHashTable,
    HopscotchTable,
    JakiroStore,
    crc64,
    pack_get_request,
    pack_put_request,
    unpack_get_request,
    unpack_put_request,
)
from repro.kv.store import SLOTS_PER_BUCKET, partition_of

keys = st.binary(min_size=1, max_size=64)
values = st.binary(min_size=0, max_size=256)


class TestSerializationProperties:
    @given(keys)
    def test_get_round_trip(self, key):
        assert unpack_get_request(pack_get_request(key)) == key

    @given(keys, values)
    def test_put_round_trip(self, key, value):
        assert unpack_put_request(pack_put_request(key, value)) == (key, value)


class TestCrcProperties:
    @given(st.binary(max_size=512))
    def test_deterministic_and_64_bit(self, data):
        digest = crc64(data)
        assert digest == crc64(data)
        assert 0 <= digest < 2**64

    @given(st.binary(min_size=1, max_size=256), st.integers(0, 255))
    def test_single_byte_flip_always_detected(self, data, position_seed):
        """CRC64 detects every single-bit/byte corruption."""
        position = position_seed % len(data)
        corrupted = bytearray(data)
        corrupted[position] ^= 0xA5
        if bytes(corrupted) != data:
            assert crc64(bytes(corrupted)) != crc64(data)


class TestCuckooProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(keys, st.integers()), min_size=0, max_size=120))
    def test_matches_dict_semantics(self, operations):
        table = CuckooHashTable(capacity=512, seed=1)
        model = {}
        for key, value in operations:
            table.insert(key, value)
            model[key] = value
        assert len(table) == len(model)
        for key, value in model.items():
            assert table.lookup(key)[0] == value

    @settings(max_examples=40, deadline=None)
    @given(st.lists(keys, min_size=0, max_size=120), st.lists(keys, max_size=40))
    def test_delete_removes_exactly_the_key(self, inserted, deleted):
        table = CuckooHashTable(capacity=512, seed=1)
        model = {}
        for key in inserted:
            table.insert(key, len(key))
            model[key] = len(key)
        for key in deleted:
            assert table.delete(key) == (key in model)
            model.pop(key, None)
        for key, value in model.items():
            assert table.lookup(key)[0] == value

    @given(keys, st.integers(4, 4096))
    def test_candidates_distinct_and_in_range(self, key, capacity):
        from repro.kv.cuckoo import cuckoo_candidates

        candidates = cuckoo_candidates(key, capacity)
        assert len(candidates) == 3
        assert len(set(candidates)) == 3
        assert all(0 <= c < capacity for c in candidates)

    @given(keys)
    def test_probe_count_between_one_and_three(self, key):
        table = CuckooHashTable(capacity=128, seed=2)
        table.insert(key, 0)
        _, probes = table.lookup(key)
        assert 1 <= probes <= 3


class TestHopscotchProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(keys, st.integers()), min_size=0, max_size=150))
    def test_matches_dict_and_keeps_neighborhood_invariant(self, operations):
        table = HopscotchTable(capacity=1024, neighborhood=8)
        model = {}
        for key, value in operations:
            table.insert(key, value)
            model[key] = value
        assert len(table) == len(model)
        for key, value in model.items():
            assert table.lookup(key) == value
            slots = table.neighborhood_slots(key)
            assert any(
                table.slot(s) is not None and table.slot(s)[0] == key for s in slots
            )


class TestTraceProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), keys, values),
            max_size=60,
        )
    )
    def test_trace_round_trip_any_operations(self, raw):
        import io

        from repro.workloads import Operation
        from repro.workloads.traces import read_trace, write_trace

        operations = [
            Operation(is_get, key, None if is_get else value)
            for is_get, key, value in raw
        ]
        buffer = io.BytesIO()
        count = write_trace(operations, buffer)
        assert count == len(operations)
        buffer.seek(0)
        assert list(read_trace(buffer)) == operations


class TestJakiroStoreProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(keys, values), min_size=0, max_size=100))
    def test_last_write_wins_when_no_eviction(self, pairs):
        store = JakiroStore(partitions=3, buckets_per_partition=4096)
        model = {}
        for key, value in pairs:
            store.put(partition_of(key, 3), key, value)
            model[key] = value
        # With this few keys over that many buckets, eviction is
        # effectively impossible; every key must read back.
        if store.counters.evictions.value == 0:
            for key, value in model.items():
                assert store.get(partition_of(key, 3), key)[0] == value
            assert store.size() == len(model)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(keys, values), min_size=0, max_size=200))
    def test_buckets_never_overflow(self, pairs):
        store = JakiroStore(partitions=2, buckets_per_partition=4)
        for key, value in pairs:
            store.put(partition_of(key, 2), key, value)
        for partition in store._buckets:
            for bucket in partition:
                assert len(bucket) <= SLOTS_PER_BUCKET

    @given(keys, st.integers(1, 64))
    def test_partition_of_in_range(self, key, partitions):
        assert 0 <= partition_of(key, partitions) < partitions
