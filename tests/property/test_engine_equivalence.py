"""Property: the fast engine is observationally identical to the
reference engine on randomly generated process/waitable DAGs.

Hypothesis draws a small program — a set of processes, each a random
sequence of operations over direct delays, timeouts, shared events,
``AnyOf``/``AllOf`` composites, and joins on other processes — and runs
it under ``Simulator()`` and ``Simulator(reference=True)``.  The full
observable history (every step's ``(process, op, value, now)``), the
final clock, and the total dispatch count must match exactly.  Delays
are drawn from a tiny grid so same-timestamp collisions (the regime
where ordering bugs hide) are common rather than rare.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import AllOf, AnyOf, Simulator

# A tiny delay grid maximises timestamp collisions; all values are exact
# binary floats so time arithmetic is bit-reproducible.
delays = st.sampled_from([0.0, 0.5, 1.0, 1.5])

# One process body = a sequence of opcodes interpreted by _body below.
#   ("delay", d)    -> yield d                (direct-delay dispatch path)
#   ("timeout", d)  -> yield sim.timeout(d)
#   ("trigger", i)  -> trigger shared event i (if still pending)
#   ("wait", i)     -> yield shared event i   (skipped if never triggered)
#   ("any", d1, d2) -> yield AnyOf(timeout(d1), timeout(d2))
#   ("all", d1, d2) -> yield AllOf(timeout(d1), timeout(d2))
#   ("join", j)     -> yield process j        (earlier-started only)
ops = st.one_of(
    st.tuples(st.just("delay"), delays),
    st.tuples(st.just("timeout"), delays),
    st.tuples(st.just("trigger"), st.integers(0, 2)),
    st.tuples(st.just("wait"), st.integers(0, 2)),
    st.tuples(st.just("any"), delays, delays),
    st.tuples(st.just("all"), delays, delays),
    st.tuples(st.just("join"), st.integers(0, 5)),
)

programs = st.lists(
    st.lists(ops, min_size=1, max_size=6), min_size=1, max_size=6
)


def _execute(program, reference):
    sim = Simulator(reference=reference)
    # Shared events: "trigger" ops fire them, nobody waits unless a
    # "wait" op is drawn; triggered-twice is guarded at the op site.
    shared = [sim.event() for _ in range(3)]
    history = []
    processes = []

    def body(pid, opcodes):
        for step, opcode in enumerate(opcodes):
            kind = opcode[0]
            if kind == "delay":
                yield opcode[1]
                history.append((pid, step, "delay", sim.now))
            elif kind == "timeout":
                value = yield sim.timeout(opcode[1], value=(pid, step))
                history.append((pid, step, value, sim.now))
            elif kind == "trigger":
                event = shared[opcode[1]]
                if not event.triggered:
                    event.trigger((pid, step))
                history.append((pid, step, "trigger", sim.now))
            elif kind == "wait":
                # May never trigger: the process then parks forever,
                # which both engines must agree on as well.
                value = yield shared[opcode[1]]
                history.append((pid, step, value, sim.now))
            elif kind == "any":
                value = yield AnyOf(
                    sim, [sim.timeout(opcode[1]), sim.timeout(opcode[2], 1)]
                )
                history.append((pid, step, value, sim.now))
            elif kind == "all":
                value = yield AllOf(
                    sim, [sim.timeout(opcode[1], 0), sim.timeout(opcode[2], 1)]
                )
                history.append((pid, step, tuple(value), sim.now))
            elif kind == "join":
                target = opcode[1]
                if target < len(processes):
                    value = yield processes[target]
                    history.append((pid, step, value, sim.now))
        return pid

    for pid, opcodes in enumerate(program):
        processes.append(sim.process(body(pid, opcodes), name=f"p{pid}"))
    sim.run()
    final = [
        (process.done.ok, process.done._value) for process in processes
    ]
    return history, final, sim.now, sim.dispatched


class TestEngineEquivalenceProperty:
    @settings(max_examples=120, deadline=None)
    @given(programs)
    def test_fast_engine_matches_reference(self, program):
        fast = _execute(program, reference=False)
        reference = _execute(program, reference=True)
        assert fast == reference
