"""Tier-1 gate: the shipped tree must be lint-clean.

Runs the full analyzer stack in-process (no subprocess) over ``src`` and
``benchmarks`` so a violating commit fails the plain test suite, not
just an optional CI step: the six determinism rules, the atomicity call
graph, the trace-phase schema rule, stale-pragma detection, and the
registry/checker coverage check.
"""

import ast
import os

from repro.lint import lint_paths
from repro.lint.base import FileContext
from repro.lint.callgraph import ProjectIndex
from repro.lint.engine import iter_python_files
from repro.lint.schema import (
    TRACE_SCHEMA,
    check_registry_coverage,
    collect_record_call_sites,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def shipped_targets():
    targets = [os.path.join(REPO_ROOT, "src")]
    benchmarks = os.path.join(REPO_ROOT, "benchmarks")
    if os.path.isdir(benchmarks):
        targets.append(benchmarks)
    return targets


def test_src_and_benchmarks_are_lint_clean():
    # warn_unused_suppressions makes stale pragmas a gate failure too:
    # an exception whose reason is gone must be deleted, not inherited.
    violations = lint_paths(shipped_targets(), warn_unused_suppressions=True)
    assert violations == [], "determinism lint found violations:\n" + "\n".join(
        v.format() for v in violations
    )


def test_cluster_package_is_covered_by_discovery():
    """The gate must actually see ``repro.cluster`` — a discovery miss
    would make the first assertion pass vacuously for the new package."""
    src = os.path.join(REPO_ROOT, "src")
    discovered = set(iter_python_files([src]))
    cluster_dir = os.path.join(src, "repro", "cluster")
    expected = {
        os.path.join(cluster_dir, name)
        for name in os.listdir(cluster_dir)
        if name.endswith(".py")
    }
    assert expected  # the package exists and has modules
    assert expected <= discovered
    # The recovery subsystem's modules are where nondeterminism would be
    # easiest to smuggle in (wall-clock pacing, random batch orders), so
    # pin them by name rather than trusting the directory listing alone.
    for name in ("recovery.py", "migration.py", "faults.py"):
        assert os.path.join(cluster_dir, name) in discovered, name


def test_trace_registry_and_checkers_are_consistent():
    """Every checker-handled phase is declared; every declared, checked
    phase is handled.  This is the registry/checker half of the schema
    gate — the call-site half runs inside the lint pass above."""
    assert check_registry_coverage() == []


def test_every_record_call_site_is_declared():
    """AST-walk the shipped tree: each literal ``tracer.record`` site
    names a registered category and phase.  Guards against a new trace
    phase landing without a registry entry (the lint would catch it too,
    but this assertion fails with the site list, not a lint report)."""
    sites = collect_record_call_sites(shipped_targets())
    assert len(sites) >= 15, "discovery collapsed — record sites missing"
    for path, lineno, category, label in sites:
        if category is None:
            continue
        assert category in TRACE_SCHEMA, f"{path}:{lineno}: {category!r}"
        if label is not None:
            assert label in TRACE_SCHEMA[category], f"{path}:{lineno}: {label!r}"


def test_bench_artifacts_at_repo_root_are_schema_valid():
    """Every checked-in ``BENCH_*.json`` must validate against its
    artifact schema (``repro.exp/v1`` or ``repro.bench.speed/v2``) —
    a drifted writer or a hand-edited artifact fails the plain suite."""
    from repro.exp.artifact import load_payload, repo_root_artifacts

    artifacts = repo_root_artifacts()
    assert artifacts, "no BENCH_*.json at repo root — regenerate them"
    for path in artifacts:
        load_payload(str(path))  # validates; raises ExpError on drift


def test_experiment_registry_is_closed_both_ways():
    """Every ``repro.exp`` spec is runnable, registered in the bench
    registry, and covered by a suite — and every suite member exists."""
    from repro.exp.suites import check_exp_registry

    assert check_exp_registry() == []


def test_cluster_atomic_regions_are_declared_and_proven():
    """The ring-surgery/handoff regions carry the atomic contract both
    ways: the runtime marker is on the bound callables, and the static
    call graph proves no transitive yield path out of any of them."""
    from repro.cluster import FailoverCoordinator, Membership, RfpCluster, TxnManager
    from repro.cluster.migration import RangeMigration, VnodeMigration
    from repro.cluster.recovery import RecoveryCoordinator
    from repro.sim import is_atomic_section

    expected = [
        FailoverCoordinator._on_status_change,
        FailoverCoordinator.reinstate,
        Membership._transition,
        Membership.promote,
        # The shared migration engine (recovery inherits all three).
        RangeMigration._finish_aborted,
        RangeMigration._replan,
        RangeMigration.note_write,
        RecoveryCoordinator._handoff,
        RecoveryCoordinator._on_status_change,
        # The rebalance cutover: the token-ownership flip must be as
        # atomic as the recovery handoff it generalizes.
        VnodeMigration._cutover,
        VnodeMigration._on_status_change,
        RfpCluster.kill,
        RfpCluster.note_put,
        # The transaction layer's three promised instants: a lock grant,
        # the commit visibility flip, and the abort release.
        TxnManager.grant,
        TxnManager.commit,
        TxnManager.abort,
    ]
    for fn in expected:
        assert is_atomic_section(fn), fn.__qualname__

    contexts = []
    for path in iter_python_files([os.path.join(REPO_ROOT, "src")]):
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        contexts.append(FileContext(path=path, tree=ast.parse(text), source=text))
    index = ProjectIndex.build(contexts)
    declared = {info.qualname for info in index.functions if info.atomic_declared}
    assert {fn.__qualname__ for fn in expected} <= declared
    for info in index.functions:
        if info.atomic_declared:
            assert not info.is_generator, info.qualname
            assert index.yield_path(info) is None, info.qualname
