"""Tier-1 gate: the shipped tree must be lint-clean.

Runs the determinism lint in-process (no subprocess) over ``src`` and
``benchmarks`` so a violating commit fails the plain test suite, not
just an optional CI step.
"""

import os

from repro.lint import lint_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_src_and_benchmarks_are_lint_clean():
    targets = [os.path.join(REPO_ROOT, "src")]
    benchmarks = os.path.join(REPO_ROOT, "benchmarks")
    if os.path.isdir(benchmarks):
        targets.append(benchmarks)
    violations = lint_paths(targets)
    assert violations == [], "determinism lint found violations:\n" + "\n".join(
        v.format() for v in violations
    )
