"""Tier-1 gate: the shipped tree must be lint-clean.

Runs the determinism lint in-process (no subprocess) over ``src`` and
``benchmarks`` so a violating commit fails the plain test suite, not
just an optional CI step.
"""

import os

from repro.lint import lint_paths
from repro.lint.engine import iter_python_files

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_src_and_benchmarks_are_lint_clean():
    targets = [os.path.join(REPO_ROOT, "src")]
    benchmarks = os.path.join(REPO_ROOT, "benchmarks")
    if os.path.isdir(benchmarks):
        targets.append(benchmarks)
    violations = lint_paths(targets)
    assert violations == [], "determinism lint found violations:\n" + "\n".join(
        v.format() for v in violations
    )


def test_cluster_package_is_covered_by_discovery():
    """The gate must actually see ``repro.cluster`` — a discovery miss
    would make the first assertion pass vacuously for the new package."""
    src = os.path.join(REPO_ROOT, "src")
    discovered = set(iter_python_files([src]))
    cluster_dir = os.path.join(src, "repro", "cluster")
    expected = {
        os.path.join(cluster_dir, name)
        for name in os.listdir(cluster_dir)
        if name.endswith(".py")
    }
    assert expected  # the package exists and has modules
    assert expected <= discovered
    # The recovery subsystem's modules are where nondeterminism would be
    # easiest to smuggle in (wall-clock pacing, random batch orders), so
    # pin them by name rather than trusting the directory listing alone.
    for name in ("recovery.py", "faults.py"):
        assert os.path.join(cluster_dir, name) in discovered, name
