"""Tests for JakiroClient's cross-transport statistics aggregation."""

import pytest

from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.kv import Jakiro
from repro.sim import Simulator


def make_client(threads=3):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    jakiro = Jakiro(sim, cluster, threads=threads)
    client = jakiro.connect(cluster.client_machines[0])
    return sim, jakiro, client


def run_ops(sim, client, count):
    def body(sim):
        for i in range(count):
            key = f"key-{i}".encode()
            yield from client.put(key, b"v")
            yield from client.get(key)

    sim.process(body(sim))
    sim.run()


class TestAggregation:
    def test_total_calls_sums_transports(self):
        sim, jakiro, client = make_client()
        run_ops(sim, client, 15)
        assert client.total_calls() == 30  # 15 PUTs + 15 GETs
        per_transport = [t.stats.calls.value for t in client.transports]
        assert sum(per_transport) == 30
        # EREW routing spreads keys over several transports.
        assert sum(1 for calls in per_transport if calls > 0) >= 2

    def test_latency_samples_collected_across_transports(self):
        sim, jakiro, client = make_client()
        run_ops(sim, client, 10)
        samples = client.latency_samples()
        assert len(samples) == client.total_calls()
        assert all(sample > 0 for sample in samples)

    def test_fetch_attempts_cover_every_call(self):
        sim, jakiro, client = make_client()
        run_ops(sim, client, 10)
        attempts = client.fetch_attempt_samples()
        # All calls stayed in remote-fetch mode on a fast server.
        assert len(attempts) == client.total_calls()
        assert all(a >= 1 for a in attempts)

    def test_cpu_utilization_bounded(self):
        sim, jakiro, client = make_client()
        run_ops(sim, client, 10)
        utilization = client.cpu_utilization(sim.now)
        assert 0.0 < utilization <= 1.0
        assert client.cpu_utilization(0.0) == 0.0

    def test_remote_reads_counted(self):
        sim, jakiro, client = make_client()
        run_ops(sim, client, 10)
        # One fetch read per call on an unloaded server.
        assert client.remote_reads() == client.total_calls()

    def test_one_issuer_registered_per_client_thread(self):
        sim = Simulator()
        cluster = build_cluster(sim, CLUSTER_EUROSYS17)
        jakiro = Jakiro(sim, cluster, threads=4)
        machine = cluster.client_machines[0]
        before = machine.rnic.issuing_threads
        jakiro.connect(machine)
        assert machine.rnic.issuing_threads == before + 1  # not +4
