"""Unit tests for the Hopscotch-style table (FaRM's lookup structure)."""

import pytest

from repro.errors import KVError
from repro.kv import HopscotchTable


class TestHopscotchBasics:
    def test_insert_lookup(self):
        table = HopscotchTable(capacity=64, neighborhood=8)
        table.insert(b"a", 1)
        assert table.lookup(b"a") == 1

    def test_missing_key(self):
        table = HopscotchTable(capacity=64)
        assert table.lookup(b"nope") is None

    def test_update(self):
        table = HopscotchTable(capacity=64)
        table.insert(b"k", "v1")
        table.insert(b"k", "v2")
        assert table.lookup(b"k") == "v2"
        assert len(table) == 1

    def test_delete(self):
        table = HopscotchTable(capacity=64)
        table.insert(b"k", 1)
        assert table.delete(b"k")
        assert not table.delete(b"k")
        assert len(table) == 0

    def test_validation(self):
        with pytest.raises(KVError):
            HopscotchTable(capacity=4, neighborhood=8)
        with pytest.raises(KVError):
            HopscotchTable(capacity=64, neighborhood=0)


class TestNeighborhoodInvariant:
    def test_every_key_within_neighborhood_of_home(self):
        """The invariant FaRM's single-read lookup depends on."""
        table = HopscotchTable(capacity=1024, neighborhood=8)
        keys = [f"key-{i}".encode() for i in range(700)]
        for i, key in enumerate(keys):
            table.insert(key, i)
        for key in keys:
            slots = table.neighborhood_slots(key)
            assert any(
                table.slot(s) is not None and table.slot(s)[0] == key for s in slots
            )

    def test_neighborhood_slots_are_contiguous(self):
        table = HopscotchTable(capacity=128, neighborhood=8)
        slots = table.neighborhood_slots(b"k")
        for a, b in zip(slots, slots[1:]):
            assert b == (a + 1) % 128

    def test_lookup_never_scans_past_neighborhood(self):
        """A key outside its neighborhood is unreachable by design, so a
        reader fetching N slots sees everything it can ever need."""
        table = HopscotchTable(capacity=256, neighborhood=4)
        for i in range(150):
            table.insert(f"k{i}".encode(), i)
        for i in range(150):
            assert table.lookup(f"k{i}".encode()) == i

    def test_dense_table_raises_rather_than_violating_invariant(self):
        table = HopscotchTable(capacity=16, neighborhood=2)
        with pytest.raises(KVError):
            for i in range(16):
                table.insert(f"k{i}".encode(), i)

    def test_wraparound_near_table_end(self):
        table = HopscotchTable(capacity=32, neighborhood=8)
        # Find a key homed in the last few slots so its window wraps.
        for i in range(5000):
            key = f"wrap-{i}".encode()
            if table.home(key) >= 28:
                table.insert(key, i)
                assert table.lookup(key) == i
                break
        else:
            pytest.fail("no wrapping key found")
