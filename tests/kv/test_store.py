"""Unit tests for the Jakiro bucket/slot store."""

import numpy as np
import pytest

from repro.errors import KVError, KeyTooLargeError, ValueTooLargeError
from repro.kv import JakiroStore, StoreCostModel, partition_of
from repro.kv.store import SLOTS_PER_BUCKET, key_hash


def make_store(partitions=2, buckets=8, **kwargs):
    return JakiroStore(partitions, buckets_per_partition=buckets, **kwargs)


def owned_keys(store, partition, count, tag=b"k"):
    """Generate ``count`` distinct keys owned by ``partition``."""
    keys = []
    i = 0
    while len(keys) < count:
        key = tag + str(i).encode()
        if partition_of(key, store.partitions) == partition:
            keys.append(key)
        i += 1
    return keys


class TestBasicOperations:
    def test_put_then_get(self):
        store = make_store()
        key = owned_keys(store, 0, 1)[0]
        store.put(0, key, b"value")
        value, _cost = store.get(0, key)
        assert value == b"value"

    def test_get_missing_returns_none(self):
        store = make_store()
        key = owned_keys(store, 1, 1)[0]
        value, cost = store.get(1, key)
        assert value is None
        assert cost > 0
        assert store.counters.misses.value == 1

    def test_update_in_place(self):
        store = make_store()
        key = owned_keys(store, 0, 1)[0]
        store.put(0, key, b"old")
        store.put(0, key, b"new")
        assert store.get(0, key)[0] == b"new"
        assert store.counters.updates.value == 1
        assert store.size() == 1

    def test_erew_violation_rejected(self):
        """A thread touching another thread's partition is a bug."""
        store = make_store()
        key = owned_keys(store, 0, 1)[0]
        with pytest.raises(KVError):
            store.put(1, key, b"x")
        with pytest.raises(KVError):
            store.get(1, key)

    def test_partition_bounds_checked(self):
        store = make_store()
        with pytest.raises(KVError):
            store.get(5, b"k")

    def test_size_limits_enforced(self):
        store = make_store(max_key_bytes=8, max_value_bytes=16)
        key = owned_keys(store, 0, 1)[0]
        with pytest.raises(ValueTooLargeError):
            store.put(0, key, bytes(17))
        long_key = owned_keys(store, 0, 1, tag=b"verylongkey")[0]
        with pytest.raises(KeyTooLargeError):
            store.put(0, long_key, b"v")

    def test_cost_grows_with_value_size(self):
        store = make_store()
        key = owned_keys(store, 0, 1)[0]
        _, small_cost = store.put(0, key, bytes(32))
        _, big_cost = store.put(0, key, bytes(8192))
        assert big_cost > small_cost


class TestLruEviction:
    def fill_one_bucket(self, store):
        """Find SLOTS_PER_BUCKET+1 distinct keys hashing to one bucket."""
        buckets = {}
        i = 0
        while True:
            key = f"evict-{i}".encode()
            i += 1
            partition = partition_of(key, store.partitions)
            bucket = (key_hash(key) // store.partitions) % store.buckets_per_partition
            group = buckets.setdefault((partition, bucket), [])
            group.append(key)
            if len(group) == SLOTS_PER_BUCKET + 1:
                return partition, group

    def test_full_bucket_evicts_strict_lru(self):
        store = make_store(partitions=1, buckets=2)
        partition, keys = self.fill_one_bucket(store)
        for key in keys[:SLOTS_PER_BUCKET]:
            store.put(partition, key, b"v-" + key)
        # Touch everything except the intended victim, oldest first.
        victim = keys[0]
        for key in keys[1:SLOTS_PER_BUCKET]:
            store.get(partition, key)
        store.put(partition, keys[SLOTS_PER_BUCKET], b"newcomer")
        assert store.counters.evictions.value == 1
        assert store.get(partition, victim)[0] is None
        assert store.get(partition, keys[SLOTS_PER_BUCKET])[0] == b"newcomer"

    def test_get_refreshes_recency(self):
        store = make_store(partitions=1, buckets=2)
        partition, keys = self.fill_one_bucket(store)
        for key in keys[:SLOTS_PER_BUCKET]:
            store.put(partition, key, b"x")
        # Refresh the oldest; now keys[1] is the LRU victim.
        store.get(partition, keys[0])
        store.put(partition, keys[SLOTS_PER_BUCKET], b"new")
        assert store.get(partition, keys[0])[0] == b"x"
        assert store.get(partition, keys[1])[0] is None

    def test_bucket_never_exceeds_slot_count(self):
        store = make_store(partitions=1, buckets=1)
        for i in range(100):
            key = f"k{i}".encode()
            store.put(0, key, b"v")
        for bucket in store._buckets[0]:
            assert len(bucket) <= SLOTS_PER_BUCKET


class TestCostModel:
    def test_jitter_tail_frequency(self):
        """~0.2% of operations get the heavy tail (paper §4.4.2)."""
        model = StoreCostModel(jitter_probability=0.002, jitter_mean_us=4.0)
        rng = np.random.default_rng(7)
        costs = [model.cost(32, rng) for _ in range(50_000)]
        base = model.base_us + 32 * model.per_byte_us
        slow = sum(1 for c in costs if c > base + 1.0)
        assert 0.0005 < slow / len(costs) < 0.005

    def test_no_rng_means_deterministic(self):
        model = StoreCostModel()
        assert model.cost(100, None) == model.cost(100, None)


class TestPartitioning:
    def test_partition_of_is_stable(self):
        assert partition_of(b"abc", 6) == partition_of(b"abc", 6)

    def test_partition_of_spreads_keys(self):
        counts = [0] * 6
        for i in range(6000):
            counts[partition_of(f"key-{i}".encode(), 6)] += 1
        assert min(counts) > 700  # roughly uniform

    def test_partition_validation(self):
        with pytest.raises(KVError):
            partition_of(b"k", 0)

    def test_partition_sizes_accounting(self):
        store = make_store(partitions=3, buckets=64)
        for i in range(90):
            key = f"s{i}".encode()
            store.put(partition_of(key, 3), key, b"v")
        sizes = store.partition_sizes()
        assert sum(sizes.values()) == store.size() == 90
