"""Integration tests: the Jakiro KV store end to end."""

import pytest

from repro.core import Mode
from repro.hw import CLUSTER_EUROSYS17, build_cluster
from repro.kv import Jakiro, partition_of
from repro.sim import Simulator, ThroughputMeter


def make_jakiro(threads=6, **kwargs):
    sim = Simulator()
    cluster = build_cluster(sim, CLUSTER_EUROSYS17)
    jakiro = Jakiro(sim, cluster, threads=threads, **kwargs)
    return sim, cluster, jakiro


class TestJakiroSemantics:
    def test_put_get_round_trip(self):
        sim, cluster, jakiro = make_jakiro()
        client = jakiro.connect(cluster.client_machines[0])

        def body(sim):
            yield from client.put(b"user:1", b"alice")
            value = yield from client.get(b"user:1")
            return value

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == b"alice"

    def test_get_missing_key_returns_none(self):
        sim, cluster, jakiro = make_jakiro()
        client = jakiro.connect(cluster.client_machines[0])

        def body(sim):
            return (yield from client.get(b"nothing"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value is None

    def test_overwrite(self):
        sim, cluster, jakiro = make_jakiro()
        client = jakiro.connect(cluster.client_machines[0])

        def body(sim):
            yield from client.put(b"k", b"v1")
            yield from client.put(b"k", b"v2")
            return (yield from client.get(b"k"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == b"v2"

    def test_keys_visible_across_clients(self):
        """EREW routing sends the same key to the same partition from
        any client, so writes are globally visible."""
        sim, cluster, jakiro = make_jakiro()
        writer = jakiro.connect(cluster.client_machines[0])
        reader = jakiro.connect(cluster.client_machines[3])
        result = {}

        def write(sim):
            yield from writer.put(b"shared", b"payload")

        def read(sim):
            yield sim.timeout(100.0)
            result["value"] = yield from reader.get(b"shared")

        sim.process(write(sim))
        sim.process(read(sim))
        sim.run()
        assert result["value"] == b"payload"

    def test_requests_land_on_owning_partition(self):
        sim, cluster, jakiro = make_jakiro(threads=4)
        client = jakiro.connect(cluster.client_machines[0])
        keys = [f"key-{i}".encode() for i in range(40)]

        def body(sim):
            for key in keys:
                yield from client.put(key, b"v")

        sim.process(body(sim))
        sim.run()
        sizes = jakiro.store.partition_sizes()
        expected = {p: 0 for p in range(4)}
        for key in keys:
            expected[partition_of(key, 4)] += 1
        assert sizes == expected

    def test_preload_bypasses_simulation(self):
        sim, cluster, jakiro = make_jakiro()
        jakiro.preload((f"k{i}".encode(), b"v") for i in range(1000))
        assert jakiro.store.size() == 1000
        assert sim.now == 0.0

    def test_values_up_to_8kb(self):
        sim, cluster, jakiro = make_jakiro()
        client = jakiro.connect(cluster.client_machines[0])
        big = bytes(range(256)) * 32  # 8192 B

        def body(sim):
            yield from client.put(b"big", big)
            return (yield from client.get(b"big"))

        proc = sim.process(body(sim))
        sim.run()
        assert proc.value == big

    def test_fast_server_stays_in_remote_fetch(self):
        sim, cluster, jakiro = make_jakiro()
        client = jakiro.connect(cluster.client_machines[0])

        def body(sim):
            for i in range(30):
                yield from client.put(f"k{i}".encode(), bytes(32))
                yield from client.get(f"k{i}".encode())

        sim.process(body(sim))
        sim.run()
        assert all(t.mode is Mode.REMOTE_FETCH for t in client.transports)
        assert jakiro.server.stats.replies_sent.value == 0


class TestJakiroThroughput:
    def run_peak(self, threads=6, client_threads=35, value_size=32, window=4000.0):
        sim, cluster, jakiro = make_jakiro(threads=threads)
        value = bytes(value_size)
        keys = [f"key-{i}".encode() for i in range(2048)]
        jakiro.preload((k, value) for k in keys)
        meter = ThroughputMeter(window_start=window * 0.25, window_end=window)

        def loop(sim, client, offset):
            index = offset
            while True:
                yield from client.get(keys[index % len(keys)])
                meter.record(sim.now)
                index += 7

        for i in range(client_threads):
            client = jakiro.connect(cluster.client_machines[i % 7])
            sim.process(loop(sim, client, i * 13))
        sim.run(until=window)
        return meter.mops(elapsed=window * 0.75)

    def test_peak_throughput_near_paper(self):
        """Paper Fig. 10/12: Jakiro peaks at ~5.5 MOPS."""
        mops = self.run_peak()
        assert mops == pytest.approx(5.5, rel=0.12)

    def test_two_server_threads_nearly_enough(self):
        """Paper §4.4.1: >2 threads suffice once networking is offloaded."""
        at_2 = self.run_peak(threads=2)
        at_6 = self.run_peak(threads=6)
        assert at_2 > 0.8 * at_6
