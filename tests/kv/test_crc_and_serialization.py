"""Unit tests for CRC64 and the KV wire format."""

import pytest

from repro.errors import ProtocolError
from repro.kv import (
    crc64,
    pack_get_request,
    pack_put_request,
    unpack_get_request,
    unpack_put_request,
)


class TestCrc64:
    def test_known_vector(self):
        # CRC-64/XZ check value for "123456789".
        assert crc64(b"123456789") == 0x995DC9BBDF1939FA

    def test_empty_input(self):
        assert crc64(b"") == 0

    def test_deterministic(self):
        assert crc64(b"jakiro") == crc64(b"jakiro")

    def test_sensitive_to_any_byte_flip(self):
        base = bytearray(b"some-kv-record-payload")
        reference = crc64(bytes(base))
        for index in range(len(base)):
            flipped = bytearray(base)
            flipped[index] ^= 0x01
            assert crc64(bytes(flipped)) != reference

    def test_detects_torn_write(self):
        """The Pilaf race: half-old, half-new bytes fail the checksum."""
        old = b"A" * 16
        new = b"B" * 16
        torn = new[:8] + old[8:]
        assert crc64(torn) != crc64(new)
        assert crc64(torn) != crc64(old)

    def test_64_bit_range(self):
        value = crc64(b"range-check")
        assert 0 <= value < 2**64


class TestKvSerialization:
    def test_get_round_trip(self):
        packed = pack_get_request(b"user:42")
        assert unpack_get_request(packed) == b"user:42"

    def test_put_round_trip(self):
        packed = pack_put_request(b"k", b"v" * 100)
        assert unpack_put_request(packed) == (b"k", b"v" * 100)

    def test_put_with_empty_value(self):
        assert unpack_put_request(pack_put_request(b"k", b"")) == (b"k", b"")

    def test_empty_key_rejected(self):
        with pytest.raises(ProtocolError):
            pack_get_request(b"")

    def test_oversized_key_rejected(self):
        with pytest.raises(ProtocolError):
            pack_get_request(b"x" * 70000)

    def test_runt_request_rejected(self):
        with pytest.raises(ProtocolError):
            unpack_get_request(b"\x05")

    def test_truncated_key_rejected(self):
        with pytest.raises(ProtocolError):
            unpack_get_request(b"\x08\x00abc")

    def test_get_with_trailing_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            unpack_get_request(pack_get_request(b"ok") + b"!")

    def test_binary_keys_and_values(self):
        key = bytes(range(256))[:200]
        value = bytes(reversed(range(256))) * 4
        assert unpack_put_request(pack_put_request(key, value)) == (key, value)
