"""Unit tests for the 3-way Cuckoo hash table (Pilaf's index)."""

import pytest

from repro.errors import KVError
from repro.kv import CuckooHashTable


class TestCuckooBasics:
    def test_insert_lookup(self):
        table = CuckooHashTable(capacity=64)
        table.insert(b"alpha", 1)
        value, probes = table.lookup(b"alpha")
        assert value == 1
        assert 1 <= probes <= 3

    def test_missing_key_probes_all_ways(self):
        table = CuckooHashTable(capacity=64)
        value, probes = table.lookup(b"ghost")
        assert value is None
        assert probes == 3

    def test_update_in_place(self):
        table = CuckooHashTable(capacity=64)
        table.insert(b"k", "old")
        table.insert(b"k", "new")
        assert table.lookup(b"k")[0] == "new"
        assert len(table) == 1

    def test_delete(self):
        table = CuckooHashTable(capacity=64)
        table.insert(b"k", 1)
        assert table.delete(b"k")
        assert not table.delete(b"k")
        assert b"k" not in table
        assert len(table) == 0

    def test_candidates_are_three_distinct_slots(self):
        table = CuckooHashTable(capacity=64)
        for i in range(200):
            candidates = table.candidates(f"key{i}".encode())
            assert len(set(candidates)) == 3
            assert all(0 <= c < 64 for c in candidates)

    def test_capacity_validation(self):
        with pytest.raises(KVError):
            CuckooHashTable(capacity=2)


class TestCuckooUnderLoad:
    def test_75_percent_fill_succeeds(self):
        """Pilaf runs its table at 75% fill."""
        table = CuckooHashTable(capacity=4096, seed=3)
        count = int(4096 * 0.75)
        for i in range(count):
            table.insert(f"key-{i}".encode(), i)
        assert len(table) == count
        assert table.load_factor() == pytest.approx(0.75)
        for i in range(0, count, 97):
            assert table.lookup(f"key-{i}".encode())[0] == i

    def test_mean_probes_at_75_fill_matches_pilaf(self):
        """Average index probes ~1.5-2.5; +1 data read gives Pilaf's
        ~3.2 RDMA ops per GET ballpark."""
        table = CuckooHashTable(capacity=4096, seed=3)
        keys = [f"key-{i}".encode() for i in range(int(4096 * 0.75))]
        for i, key in enumerate(keys):
            table.insert(key, i)
        mean = table.expected_probes(keys)
        assert 1.3 < mean < 2.6

    def test_kicks_recorded(self):
        table = CuckooHashTable(capacity=256, seed=1)
        for i in range(int(256 * 0.85)):
            table.insert(f"k{i}".encode(), i)
        assert table.kick_total > 0

    def test_overfull_table_raises(self):
        table = CuckooHashTable(capacity=8, max_kicks=16, seed=1)
        with pytest.raises(KVError):
            for i in range(9):
                table.insert(f"k{i}".encode(), i)

    def test_slot_update_hook_mirrors_mutations(self):
        mirror = {}

        def on_update(index, key, value):
            if key is None:
                mirror.pop(index, None)
            else:
                mirror[index] = (key, value)

        table = CuckooHashTable(capacity=512, seed=2, on_slot_update=on_update)
        for i in range(300):
            table.insert(f"k{i}".encode(), i)
        table.delete(b"k0")
        # The mirror agrees with the logical table everywhere.
        for index in range(512):
            assert table.slot(index) == mirror.get(index)
