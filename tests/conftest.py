"""Shared pytest wiring for the suite.

``--rfp-invariants`` opts every test that uses the ``rfp_invariants``
fixture into runtime protocol checking: the fixture attaches an
:class:`repro.lint.invariants.RfpInvariantChecker` to the test's tracer
and asserts it clean at teardown.  Without the flag the fixture is a
no-op (it returns ``None``), so instrumented tests cost nothing in the
default run.
"""

import pytest

from repro.lint.invariants import RfpInvariantChecker


def pytest_addoption(parser):
    parser.addoption(
        "--rfp-invariants",
        action="store_true",
        default=False,
        help=(
            "Attach the RFP protocol invariant checker to simulations "
            "instrumented through the rfp_invariants fixture and fail the "
            "test on any protocol violation."
        ),
    )


@pytest.fixture
def rfp_invariants(request):
    """Factory fixture: ``attach(tracer, **checker_kwargs) -> checker|None``.

    Returns ``None`` when the session runs without ``--rfp-invariants``,
    so tests can call it unconditionally.  Every checker attached through
    the factory is asserted clean when the test finishes.
    """
    enabled = request.config.getoption("--rfp-invariants")
    checkers = []

    def attach(tracer, **kwargs):
        if not enabled:
            return None
        checker = RfpInvariantChecker(**kwargs).attach(tracer)
        checkers.append(checker)
        return checker

    yield attach
    for checker in checkers:
        checker.assert_clean()
