"""Shim so legacy editable installs work offline (no `wheel` package).

All metadata lives in pyproject.toml; use
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
